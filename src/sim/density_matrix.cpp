#include "sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "qc/schedule.hpp"

namespace smq::sim {

namespace {
constexpr std::size_t kMaxQubits = 11;
} // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : numQubits_(num_qubits), dim_(std::size_t{1} << num_qubits)
{
    if (num_qubits > kMaxQubits)
        throw std::invalid_argument(
            "DensityMatrix: too many qubits for dense simulation");
    rho_.assign(dim_ * dim_, Complex{0.0, 0.0});
    rho_[0] = 1.0;
}

Complex
DensityMatrix::element(std::size_t r, std::size_t c) const
{
    if (r >= dim_ || c >= dim_)
        throw std::out_of_range("DensityMatrix::element");
    return rho_[r * dim_ + c];
}

void
DensityMatrix::checkQubit(std::size_t q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("DensityMatrix: qubit index out of range");
}

void
DensityMatrix::applyMatrix1(std::size_t q, const Matrix2 &u)
{
    checkQubit(q);
    const std::size_t stride = std::size_t{1} << q;
    // left multiply: rows
    for (std::size_t c = 0; c < dim_; ++c) {
        for (std::size_t base = 0; base < dim_; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                std::size_t r0 = base + off;
                std::size_t r1 = r0 + stride;
                Complex a0 = rho_[r0 * dim_ + c];
                Complex a1 = rho_[r1 * dim_ + c];
                rho_[r0 * dim_ + c] = u[0] * a0 + u[1] * a1;
                rho_[r1 * dim_ + c] = u[2] * a0 + u[3] * a1;
            }
        }
    }
    // right multiply by U^dagger: columns with conjugated entries
    for (std::size_t r = 0; r < dim_; ++r) {
        for (std::size_t base = 0; base < dim_; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                std::size_t c0 = base + off;
                std::size_t c1 = c0 + stride;
                Complex a0 = rho_[r * dim_ + c0];
                Complex a1 = rho_[r * dim_ + c1];
                rho_[r * dim_ + c0] =
                    std::conj(u[0]) * a0 + std::conj(u[1]) * a1;
                rho_[r * dim_ + c1] =
                    std::conj(u[2]) * a0 + std::conj(u[3]) * a1;
            }
        }
    }
}

void
DensityMatrix::applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &u)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        throw std::invalid_argument("DensityMatrix: duplicate qubit");
    const std::size_t s0 = std::size_t{1} << q0;
    const std::size_t s1 = std::size_t{1} << q1;

    for (std::size_t c = 0; c < dim_; ++c) {
        for (std::size_t idx = 0; idx < dim_; ++idx) {
            if ((idx & s0) || (idx & s1))
                continue;
            std::size_t r[4] = {idx, idx + s1, idx + s0, idx + s0 + s1};
            Complex a[4];
            for (int k = 0; k < 4; ++k)
                a[k] = rho_[r[k] * dim_ + c];
            for (int k = 0; k < 4; ++k) {
                rho_[r[k] * dim_ + c] = u[k * 4 + 0] * a[0] +
                                        u[k * 4 + 1] * a[1] +
                                        u[k * 4 + 2] * a[2] +
                                        u[k * 4 + 3] * a[3];
            }
        }
    }
    for (std::size_t r = 0; r < dim_; ++r) {
        for (std::size_t idx = 0; idx < dim_; ++idx) {
            if ((idx & s0) || (idx & s1))
                continue;
            std::size_t c[4] = {idx, idx + s1, idx + s0, idx + s0 + s1};
            Complex a[4];
            for (int k = 0; k < 4; ++k)
                a[k] = rho_[r * dim_ + c[k]];
            for (int k = 0; k < 4; ++k) {
                rho_[r * dim_ + c[k]] = std::conj(u[k * 4 + 0]) * a[0] +
                                        std::conj(u[k * 4 + 1]) * a[1] +
                                        std::conj(u[k * 4 + 2]) * a[2] +
                                        std::conj(u[k * 4 + 3]) * a[3];
            }
        }
    }
}

void
DensityMatrix::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    if (gate.type == GateType::CCX || gate.type == GateType::CSWAP) {
        // Decompose the permutation into the 2q basis via a swap on
        // amplitudes is awkward for rho; apply as row/col permutation.
        auto permute = [&](std::size_t idx) {
            if (gate.type == GateType::CCX) {
                std::size_t c0 = std::size_t{1} << gate.qubits[0];
                std::size_t c1 = std::size_t{1} << gate.qubits[1];
                std::size_t t = std::size_t{1} << gate.qubits[2];
                if ((idx & c0) && (idx & c1))
                    return idx ^ t;
                return idx;
            }
            std::size_t c = std::size_t{1} << gate.qubits[0];
            std::size_t a = std::size_t{1} << gate.qubits[1];
            std::size_t b = std::size_t{1} << gate.qubits[2];
            if ((idx & c) && (((idx & a) != 0) != ((idx & b) != 0)))
                return idx ^ a ^ b;
            return idx;
        };
        std::vector<Complex> next(dim_ * dim_);
        for (std::size_t r = 0; r < dim_; ++r) {
            for (std::size_t c = 0; c < dim_; ++c)
                next[permute(r) * dim_ + permute(c)] = rho_[r * dim_ + c];
        }
        rho_ = std::move(next);
        return;
    }
    if (gate.qubits.size() == 1) {
        applyMatrix1(gate.qubits[0], gateMatrix1(gate));
    } else if (gate.qubits.size() == 2) {
        applyMatrix2(gate.qubits[0], gate.qubits[1], gateMatrix2(gate));
    } else {
        throw std::invalid_argument("DensityMatrix::applyGate: bad arity");
    }
}

void
DensityMatrix::applyKraus1(std::size_t q, const std::vector<Matrix2> &kraus)
{
    checkQubit(q);
    std::vector<Complex> acc(dim_ * dim_, Complex{0.0, 0.0});
    std::vector<Complex> saved = rho_;
    for (const Matrix2 &k : kraus) {
        rho_ = saved;
        applyMatrix1(q, k);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += rho_[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::depolarize1(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    double sp = std::sqrt(p / 3.0);
    std::vector<Matrix2> kraus = {
        {std::sqrt(1.0 - p), 0.0, 0.0, std::sqrt(1.0 - p)},
        {0.0, sp, sp, 0.0},
        {0.0, Complex{0.0, -sp}, Complex{0.0, sp}, 0.0},
        {sp, 0.0, 0.0, -sp},
    };
    applyKraus1(q, kraus);
}

void
DensityMatrix::depolarize2(std::size_t qa, std::size_t qb, double p)
{
    if (p <= 0.0)
        return;
    checkQubit(qa);
    checkQubit(qb);
    std::vector<Complex> saved = rho_;
    std::vector<Complex> acc(dim_ * dim_, Complex{0.0, 0.0});
    static const qc::GateType paulis[4] = {qc::GateType::I, qc::GateType::X,
                                           qc::GateType::Y, qc::GateType::Z};
    for (std::size_t pa = 0; pa < 4; ++pa) {
        for (std::size_t pb = 0; pb < 4; ++pb) {
            double weight =
                (pa == 0 && pb == 0) ? (1.0 - p) : (p / 15.0);
            rho_ = saved;
            if (pa != 0)
                applyMatrix1(qa, gateMatrix1(qc::Gate(
                                     paulis[pa],
                                     {static_cast<qc::Qubit>(qa)})));
            if (pb != 0)
                applyMatrix1(qb, gateMatrix1(qc::Gate(
                                     paulis[pb],
                                     {static_cast<qc::Qubit>(qb)})));
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += weight * rho_[i];
        }
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::amplitudeDamp(std::size_t q, double gamma)
{
    if (gamma <= 0.0)
        return;
    std::vector<Matrix2> kraus = {
        {1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)},
        {0.0, std::sqrt(gamma), 0.0, 0.0},
    };
    applyKraus1(q, kraus);
}

void
DensityMatrix::dephase(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    std::vector<Matrix2> kraus = {
        {std::sqrt(1.0 - p), 0.0, 0.0, std::sqrt(1.0 - p)},
        {std::sqrt(p), 0.0, 0.0, -std::sqrt(p)},
    };
    applyKraus1(q, kraus);
}

double
DensityMatrix::trace() const
{
    double tr = 0.0;
    for (std::size_t i = 0; i < dim_; ++i)
        tr += rho_[i * dim_ + i].real();
    return tr;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho[r][c] rho[c][r] = sum |rho[r][c]|^2
    // for Hermitian rho.
    double p = 0.0;
    for (const Complex &v : rho_)
        p += std::norm(v);
    return p;
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        probs[i] = rho_[i * dim_ + i].real();
    return probs;
}

stats::Distribution
noisyDistribution(const qc::Circuit &circuit, const NoiseModel &noise)
{
    // Terminal measurements only; mirror the runner's moment loop.
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit body(circuit.numQubits());
    std::vector<bool> measured_qubit(circuit.numQubits(), false);
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE) {
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
            measured_qubit[g.qubits[0]] = true;
            continue;
        }
        if (g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "noisyDistribution: RESET not supported (use trajectories)");
        for (qc::Qubit q : g.qubits) {
            if (measured_qubit[q])
                throw std::invalid_argument(
                    "noisyDistribution: non-terminal measurement");
        }
        body.append(g);
    }

    DensityMatrix rho(circuit.numQubits());
    qc::Schedule sched = qc::schedule(body);
    const auto &gates = body.gates();
    for (const auto &moment : sched.moments) {
        double duration = 0.0;
        std::vector<bool> active(circuit.numQubits(), false);
        for (std::size_t idx : moment) {
            const qc::Gate &g = gates[idx];
            duration = std::max(duration, g.qubits.size() >= 2
                                              ? noise.time2q
                                              : noise.time1q);
            for (qc::Qubit q : g.qubits)
                active[q] = true;
            rho.applyGate(g);
            if (noise.enabled) {
                if (g.qubits.size() == 1)
                    rho.depolarize1(g.qubits[0], noise.p1);
                else if (g.qubits.size() == 2)
                    rho.depolarize2(g.qubits[0], g.qubits[1], noise.p2);
            }
        }
        if (noise.enabled && duration > 0.0) {
            for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                if (!active[q]) {
                    rho.amplitudeDamp(q,
                                      noise.idleDampingProbability(duration));
                    rho.dephase(q,
                                noise.idleDephasingProbability(duration));
                }
            }
        }
    }

    std::vector<double> probs = rho.probabilities();
    // Readout error: independent classical flips on measured qubits.
    if (noise.enabled && noise.pMeas > 0.0) {
        for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
            if (!measured_qubit[q])
                continue;
            std::size_t mask = std::size_t{1} << q;
            std::vector<double> next(probs.size());
            for (std::size_t s = 0; s < probs.size(); ++s) {
                next[s] = (1.0 - noise.pMeas) * probs[s] +
                          noise.pMeas * probs[s ^ mask];
            }
            probs = std::move(next);
        }
    }

    stats::Distribution dist;
    for (std::size_t s = 0; s < probs.size(); ++s) {
        if (probs[s] < 1e-15)
            continue;
        std::string key(circuit.numClbits(), '0');
        for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
            if (clbit_source[c] >= 0 &&
                (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                key[c] = '1';
            }
        }
        dist.add(key, probs[s]);
    }
    return dist;
}

} // namespace smq::sim
