#include "sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qc/schedule.hpp"
#include "sim/memory.hpp"

namespace smq::sim {

namespace {
constexpr std::size_t kMaxQubits = 11;

/** One kernel application (1q/2q conjugation or 3q permutation). */
inline void
countDmKernel()
{
    static obs::Counter &applies =
        obs::counter(obs::names::kSimDmGateApplies);
    applies.add();
}

/**
 * Spread the bits of @p k around two zero slots at bit positions
 * p0 < p1: enumerates the subspace with both qubits fixed at 0
 * without scanning (and branching on) every index.
 */
std::size_t
expand2(std::size_t k, std::size_t p0, std::size_t p1)
{
    std::size_t x = ((k >> p0) << (p0 + 1)) | (k & ((std::size_t{1} << p0) - 1));
    x = ((x >> p1) << (p1 + 1)) | (x & ((std::size_t{1} << p1) - 1));
    return x;
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : numQubits_(num_qubits), dim_(std::size_t{1} << num_qubits)
{
    if (num_qubits > kMaxQubits)
        throw std::invalid_argument(
            "DensityMatrix: too many qubits for dense simulation");
    // Up-front estimate: rho is 4^n amplitudes, the first allocation
    // to blow past a budget on a mis-sized cell.
    checkAllocationBudget(
        "density_matrix(" + std::to_string(num_qubits) + " qubits)",
        denseBytes(num_qubits, sizeof(Complex), true));
    rho_.assign(dim_ * dim_, Complex{0.0, 0.0});
    rho_[0] = 1.0;
}

Complex
DensityMatrix::element(std::size_t r, std::size_t c) const
{
    if (r >= dim_ || c >= dim_)
        throw std::out_of_range("DensityMatrix::element");
    return rho_[r * dim_ + c];
}

void
DensityMatrix::checkQubit(std::size_t q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("DensityMatrix: qubit index out of range");
}

void
DensityMatrix::applyMatrix1(std::size_t q, const Matrix2 &u)
{
    checkQubit(q);
    countDmKernel();
    const std::size_t stride = std::size_t{1} << q;
    // Left multiply rho <- U rho. Row-major storage makes the column
    // index the contiguous one, so each paired row walks memory
    // linearly instead of striding dim_ elements per step (the old
    // cache-hostile layout).
    for (std::size_t base = 0; base < dim_; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            Complex *row0 = rho_.data() + (base + off) * dim_;
            Complex *row1 = row0 + stride * dim_;
            for (std::size_t c = 0; c < dim_; ++c) {
                Complex a0 = row0[c];
                Complex a1 = row1[c];
                row0[c] = u[0] * a0 + u[1] * a1;
                row1[c] = u[2] * a0 + u[3] * a1;
            }
        }
    }
    // Right multiply rho <- rho U^dagger. Conjugates are hoisted out
    // of the loops, and each row's column pairs are walked through two
    // streaming pointers (both halves advance contiguously), one
    // L1-sized block of rows at a time.
    const Complex d0 = std::conj(u[0]), d1 = std::conj(u[1]);
    const Complex d2 = std::conj(u[2]), d3 = std::conj(u[3]);
    constexpr std::size_t kRowBlock = 16;
    for (std::size_t rb = 0; rb < dim_; rb += kRowBlock) {
        const std::size_t rEnd = std::min(dim_, rb + kRowBlock);
        for (std::size_t r = rb; r < rEnd; ++r) {
            Complex *row = rho_.data() + r * dim_;
            for (std::size_t base = 0; base < dim_; base += 2 * stride) {
                Complex *lo = row + base;
                Complex *hi = lo + stride;
                for (std::size_t off = 0; off < stride; ++off) {
                    Complex a0 = lo[off];
                    Complex a1 = hi[off];
                    lo[off] = d0 * a0 + d1 * a1;
                    hi[off] = d2 * a0 + d3 * a1;
                }
            }
        }
    }
}

void
DensityMatrix::applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &u)
{
    checkQubit(q0);
    checkQubit(q1);
    if (q0 == q1)
        throw std::invalid_argument("DensityMatrix: duplicate qubit");
    countDmKernel();
    const std::size_t s0 = std::size_t{1} << q0;
    const std::size_t s1 = std::size_t{1} << q1;
    std::size_t p0 = q0, p1 = q1;
    if (p0 > p1)
        std::swap(p0, p1);
    const std::size_t sub = dim_ >> 2;

    // Left multiply rho <- U rho: enumerate the 4-row groups through
    // the subspace expansion (no per-index branch) and make the
    // column index, which is contiguous in memory, the inner loop.
    for (std::size_t k = 0; k < sub; ++k) {
        const std::size_t idx = expand2(k, p0, p1);
        Complex *r0 = rho_.data() + idx * dim_;
        Complex *r1 = rho_.data() + (idx + s1) * dim_;
        Complex *r2 = rho_.data() + (idx + s0) * dim_;
        Complex *r3 = rho_.data() + (idx + s0 + s1) * dim_;
        for (std::size_t c = 0; c < dim_; ++c) {
            const Complex a0 = r0[c], a1 = r1[c], a2 = r2[c], a3 = r3[c];
            r0[c] = u[0] * a0 + u[1] * a1 + u[2] * a2 + u[3] * a3;
            r1[c] = u[4] * a0 + u[5] * a1 + u[6] * a2 + u[7] * a3;
            r2[c] = u[8] * a0 + u[9] * a1 + u[10] * a2 + u[11] * a3;
            r3[c] = u[12] * a0 + u[13] * a1 + u[14] * a2 + u[15] * a3;
        }
    }

    // Right multiply rho <- rho U^dagger with hoisted conjugates; each
    // row is processed in one pass, blocked so consecutive rows reuse
    // the cached U^dagger and loop state.
    Matrix4 ud;
    for (int k = 0; k < 16; ++k)
        ud[k] = std::conj(u[k]);
    constexpr std::size_t kRowBlock = 16;
    for (std::size_t rb = 0; rb < dim_; rb += kRowBlock) {
        const std::size_t rEnd = std::min(dim_, rb + kRowBlock);
        for (std::size_t r = rb; r < rEnd; ++r) {
            Complex *row = rho_.data() + r * dim_;
            for (std::size_t k = 0; k < sub; ++k) {
                const std::size_t idx = expand2(k, p0, p1);
                const Complex a0 = row[idx];
                const Complex a1 = row[idx + s1];
                const Complex a2 = row[idx + s0];
                const Complex a3 = row[idx + s0 + s1];
                row[idx] = ud[0] * a0 + ud[1] * a1 + ud[2] * a2 +
                           ud[3] * a3;
                row[idx + s1] = ud[4] * a0 + ud[5] * a1 + ud[6] * a2 +
                                ud[7] * a3;
                row[idx + s0] = ud[8] * a0 + ud[9] * a1 + ud[10] * a2 +
                                ud[11] * a3;
                row[idx + s0 + s1] = ud[12] * a0 + ud[13] * a1 +
                                     ud[14] * a2 + ud[15] * a3;
            }
        }
    }
}

void
DensityMatrix::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    if (gate.type == GateType::CCX || gate.type == GateType::CSWAP) {
        countDmKernel();
        // Decompose the permutation into the 2q basis via a swap on
        // amplitudes is awkward for rho; apply as row/col permutation.
        auto permute = [&](std::size_t idx) {
            if (gate.type == GateType::CCX) {
                std::size_t c0 = std::size_t{1} << gate.qubits[0];
                std::size_t c1 = std::size_t{1} << gate.qubits[1];
                std::size_t t = std::size_t{1} << gate.qubits[2];
                if ((idx & c0) && (idx & c1))
                    return idx ^ t;
                return idx;
            }
            std::size_t c = std::size_t{1} << gate.qubits[0];
            std::size_t a = std::size_t{1} << gate.qubits[1];
            std::size_t b = std::size_t{1} << gate.qubits[2];
            if ((idx & c) && (((idx & a) != 0) != ((idx & b) != 0)))
                return idx ^ a ^ b;
            return idx;
        };
        std::vector<Complex> next(dim_ * dim_);
        for (std::size_t r = 0; r < dim_; ++r) {
            for (std::size_t c = 0; c < dim_; ++c)
                next[permute(r) * dim_ + permute(c)] = rho_[r * dim_ + c];
        }
        rho_ = std::move(next);
        return;
    }
    if (gate.qubits.size() == 1) {
        applyMatrix1(gate.qubits[0], gateMatrix1(gate));
    } else if (gate.qubits.size() == 2) {
        applyMatrix2(gate.qubits[0], gate.qubits[1], gateMatrix2(gate));
    } else {
        throw std::invalid_argument("DensityMatrix::applyGate: bad arity");
    }
}

void
DensityMatrix::applyFused(const std::vector<FusedOp> &ops)
{
    for (const FusedOp &op : ops) {
        switch (op.kind) {
          case FusedOp::Kind::Unitary1:
            applyMatrix1(op.q0, op.m2);
            break;
          case FusedOp::Kind::Unitary2:
            applyMatrix2(op.q0, op.q1, op.m4);
            break;
          case FusedOp::Kind::Passthrough:
            applyGate(op.gate);
            break;
        }
    }
}

void
DensityMatrix::applyKraus1(std::size_t q, const std::vector<Matrix2> &kraus)
{
    checkQubit(q);
    std::vector<Complex> acc(dim_ * dim_, Complex{0.0, 0.0});
    std::vector<Complex> saved = rho_;
    for (const Matrix2 &k : kraus) {
        rho_ = saved;
        applyMatrix1(q, k);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += rho_[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::depolarize1(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    double sp = std::sqrt(p / 3.0);
    std::vector<Matrix2> kraus = {
        {std::sqrt(1.0 - p), 0.0, 0.0, std::sqrt(1.0 - p)},
        {0.0, sp, sp, 0.0},
        {0.0, Complex{0.0, -sp}, Complex{0.0, sp}, 0.0},
        {sp, 0.0, 0.0, -sp},
    };
    applyKraus1(q, kraus);
}

void
DensityMatrix::depolarize2(std::size_t qa, std::size_t qb, double p)
{
    if (p <= 0.0)
        return;
    checkQubit(qa);
    checkQubit(qb);
    std::vector<Complex> saved = rho_;
    std::vector<Complex> acc(dim_ * dim_, Complex{0.0, 0.0});
    static const qc::GateType paulis[4] = {qc::GateType::I, qc::GateType::X,
                                           qc::GateType::Y, qc::GateType::Z};
    for (std::size_t pa = 0; pa < 4; ++pa) {
        for (std::size_t pb = 0; pb < 4; ++pb) {
            double weight =
                (pa == 0 && pb == 0) ? (1.0 - p) : (p / 15.0);
            rho_ = saved;
            if (pa != 0)
                applyMatrix1(qa, gateMatrix1(qc::Gate(
                                     paulis[pa],
                                     {static_cast<qc::Qubit>(qa)})));
            if (pb != 0)
                applyMatrix1(qb, gateMatrix1(qc::Gate(
                                     paulis[pb],
                                     {static_cast<qc::Qubit>(qb)})));
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += weight * rho_[i];
        }
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::amplitudeDamp(std::size_t q, double gamma)
{
    if (gamma <= 0.0)
        return;
    std::vector<Matrix2> kraus = {
        {1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)},
        {0.0, std::sqrt(gamma), 0.0, 0.0},
    };
    applyKraus1(q, kraus);
}

void
DensityMatrix::dephase(std::size_t q, double p)
{
    if (p <= 0.0)
        return;
    std::vector<Matrix2> kraus = {
        {std::sqrt(1.0 - p), 0.0, 0.0, std::sqrt(1.0 - p)},
        {std::sqrt(p), 0.0, 0.0, -std::sqrt(p)},
    };
    applyKraus1(q, kraus);
}

double
DensityMatrix::trace() const
{
    double tr = 0.0;
    for (std::size_t i = 0; i < dim_; ++i)
        tr += rho_[i * dim_ + i].real();
    return tr;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho[r][c] rho[c][r] = sum |rho[r][c]|^2
    // for Hermitian rho.
    double p = 0.0;
    for (const Complex &v : rho_)
        p += std::norm(v);
    return p;
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        probs[i] = rho_[i * dim_ + i].real();
    return probs;
}

stats::Distribution
noisyDistribution(const qc::Circuit &circuit, const NoiseModel &noise)
{
    // Terminal measurements only; mirror the runner's moment loop.
    std::vector<std::ptrdiff_t> clbit_source(circuit.numClbits(), -1);
    qc::Circuit body(circuit.numQubits());
    std::vector<bool> measured_qubit(circuit.numQubits(), false);
    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::MEASURE) {
            clbit_source[static_cast<std::size_t>(g.cbit)] =
                static_cast<std::ptrdiff_t>(g.qubits[0]);
            measured_qubit[g.qubits[0]] = true;
            continue;
        }
        if (g.type == qc::GateType::RESET)
            throw std::invalid_argument(
                "noisyDistribution: RESET not supported (use trajectories)");
        for (qc::Qubit q : g.qubits) {
            if (measured_qubit[q])
                throw std::invalid_argument(
                    "noisyDistribution: non-terminal measurement");
        }
        body.append(g);
    }

    DensityMatrix rho(circuit.numQubits());
    if (!noise.enabled) {
        // No per-gate channels to interleave: fuse single-qubit runs
        // and apply the compact sequence in one go.
        rho.applyFused(fuseUnitaryCircuit(body));
        std::vector<double> probs = rho.probabilities();
        stats::Distribution dist;
        for (std::size_t s = 0; s < probs.size(); ++s) {
            if (probs[s] < 1e-15)
                continue;
            std::string key(circuit.numClbits(), '0');
            for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
                if (clbit_source[c] >= 0 &&
                    (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                    key[c] = '1';
                }
            }
            dist.add(key, probs[s]);
        }
        return dist;
    }
    qc::Schedule sched = qc::schedule(body);
    const auto &gates = body.gates();
    for (const auto &moment : sched.moments) {
        double duration = 0.0;
        std::vector<bool> active(circuit.numQubits(), false);
        for (std::size_t idx : moment) {
            const qc::Gate &g = gates[idx];
            duration = std::max(duration, g.qubits.size() >= 2
                                              ? noise.time2q
                                              : noise.time1q);
            for (qc::Qubit q : g.qubits)
                active[q] = true;
            rho.applyGate(g);
            if (noise.enabled) {
                if (g.qubits.size() == 1)
                    rho.depolarize1(g.qubits[0], noise.p1);
                else if (g.qubits.size() == 2)
                    rho.depolarize2(g.qubits[0], g.qubits[1], noise.p2);
            }
        }
        if (noise.enabled && duration > 0.0) {
            for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                if (!active[q]) {
                    rho.amplitudeDamp(q,
                                      noise.idleDampingProbability(duration));
                    rho.dephase(q,
                                noise.idleDephasingProbability(duration));
                }
            }
        }
    }

    std::vector<double> probs = rho.probabilities();
    // Readout error: independent classical flips on measured qubits.
    if (noise.enabled && noise.pMeas > 0.0) {
        for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
            if (!measured_qubit[q])
                continue;
            std::size_t mask = std::size_t{1} << q;
            std::vector<double> next(probs.size());
            for (std::size_t s = 0; s < probs.size(); ++s) {
                next[s] = (1.0 - noise.pMeas) * probs[s] +
                          noise.pMeas * probs[s ^ mask];
            }
            probs = std::move(next);
        }
    }

    stats::Distribution dist;
    for (std::size_t s = 0; s < probs.size(); ++s) {
        if (probs[s] < 1e-15)
            continue;
        std::string key(circuit.numClbits(), '0');
        for (std::size_t c = 0; c < circuit.numClbits(); ++c) {
            if (clbit_source[c] >= 0 &&
                (s >> static_cast<std::size_t>(clbit_source[c])) & 1) {
                key[c] = '1';
            }
        }
        dist.add(key, probs[s]);
    }
    return dist;
}

} // namespace smq::sim
