#include "sim/simd.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sim/kernels.hpp"

namespace smq::sim::kernels {

#ifdef SMQ_HAVE_AVX2
// Implemented in simd_avx2.cpp (the only TU built with -mavx2).
void pairTransformAvx2(Complex *lo, Complex *hi, std::size_t n,
                       const Matrix2 &m);
void quadTransformAvx2(Complex *a0, Complex *a1, Complex *a2, Complex *a3,
                       std::size_t n, const Matrix4 &m);
#endif

void
pairTransformScalar(Complex *lo, Complex *hi, std::size_t n,
                    const Matrix2 &m)
{
    // Fused real/imag form: no std::complex operator* (which may call
    // the __muldc3 NaN fix-up) in the inner loop, and the exact
    // operation order of the AVX2 mul/addsub path.
    const double m0r = m[0].real(), m0i = m[0].imag();
    const double m1r = m[1].real(), m1i = m[1].imag();
    const double m2r = m[2].real(), m2i = m[2].imag();
    const double m3r = m[3].real(), m3i = m[3].imag();
    double *plo = reinterpret_cast<double *>(lo);
    double *phi = reinterpret_cast<double *>(hi);
    for (std::size_t k = 0; k < n; ++k) {
        const double a0r = plo[2 * k], a0i = plo[2 * k + 1];
        const double a1r = phi[2 * k], a1i = phi[2 * k + 1];
        plo[2 * k] = (a0r * m0r - a0i * m0i) + (a1r * m1r - a1i * m1i);
        plo[2 * k + 1] = (a0i * m0r + a0r * m0i) + (a1i * m1r + a1r * m1i);
        phi[2 * k] = (a0r * m2r - a0i * m2i) + (a1r * m3r - a1i * m3i);
        phi[2 * k + 1] = (a0i * m2r + a0r * m2i) + (a1i * m3r + a1r * m3i);
    }
}

void
quadTransformScalar(Complex *a0, Complex *a1, Complex *a2, Complex *a3,
                    std::size_t n, const Matrix4 &m)
{
    Complex *rows[4] = {a0, a1, a2, a3};
    double mr[16], mi[16];
    for (int k = 0; k < 16; ++k) {
        mr[k] = m[static_cast<std::size_t>(k)].real();
        mi[k] = m[static_cast<std::size_t>(k)].imag();
    }
    for (std::size_t k = 0; k < n; ++k) {
        double ar[4], ai[4];
        for (int j = 0; j < 4; ++j) {
            ar[j] = rows[j][k].real();
            ai[j] = rows[j][k].imag();
        }
        for (int r = 0; r < 4; ++r) {
            // Left-to-right partial sums ((p0 + p1) + p2) + p3 seeded
            // from the first product (not 0.0, which would flush a
            // -0.0 product and break bitwise agreement), the same
            // fold order as the AVX2 kernel.
            int c = r * 4;
            double re = ar[0] * mr[c] - ai[0] * mi[c];
            double im = ai[0] * mr[c] + ar[0] * mi[c];
            for (int j = 1; j < 4; ++j) {
                c = r * 4 + j;
                re += ar[j] * mr[c] - ai[j] * mi[c];
                im += ai[j] * mr[c] + ar[j] * mi[c];
            }
            rows[r][k] = Complex(re, im);
        }
    }
}

void
pairTransform(Complex *lo, Complex *hi, std::size_t n, const Matrix2 &m)
{
#ifdef SMQ_HAVE_AVX2
    if (usingAvx2()) {
        pairTransformAvx2(lo, hi, n, m);
        return;
    }
#endif
    pairTransformScalar(lo, hi, n, m);
}

void
quadTransform(Complex *a0, Complex *a1, Complex *a2, Complex *a3,
              std::size_t n, const Matrix4 &m)
{
#ifdef SMQ_HAVE_AVX2
    if (usingAvx2()) {
        quadTransformAvx2(a0, a1, a2, a3, n, m);
        return;
    }
#endif
    quadTransformScalar(a0, a1, a2, a3, n, m);
}

void
recordSimdPath()
{
    static obs::Counter &avx2 =
        obs::counter(obs::names::kSimKernelSimdAvx2);
    static obs::Counter &scalar =
        obs::counter(obs::names::kSimKernelSimdScalar);
    if (usingAvx2())
        avx2.add();
    else
        scalar.add();
}

} // namespace smq::sim::kernels
