/**
 * @file
 * AVX2 bodies for the pair/quad transforms — the only TU built with
 * -mavx2 (and deliberately *not* -mfma: the scalar reference path has
 * no fused multiply-adds, and bitwise agreement between the two is a
 * tested invariant, so the vector path must round every product the
 * same way).
 *
 * Layout: a __m256d holds two std::complex<double> as
 * [re0, im0, re1, im1]. For a coefficient c, the product c*a is
 * computed as addsub(a * c.re, swap(a) * c.im) =
 * [ar*cr - ai*ci, ai*cr + ar*ci] — the operation order mirrored by
 * kernels::coeffMul and the scalar loops in simd.cpp.
 */

#include <immintrin.h>

#include "sim/simd.hpp"

namespace smq::sim::kernels {

namespace {

struct CoeffVec
{
    __m256d re, im;
};

inline CoeffVec
broadcast(const Complex &c)
{
    return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

/** c * a for two packed complex values. */
inline __m256d
mulCoeff(const CoeffVec &c, __m256d a)
{
    const __m256d swapped = _mm256_permute_pd(a, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(a, c.re),
                            _mm256_mul_pd(swapped, c.im));
}

} // namespace

void
pairTransformAvx2(Complex *lo, Complex *hi, std::size_t n,
                  const Matrix2 &m)
{
    const CoeffVec m0 = broadcast(m[0]), m1 = broadcast(m[1]);
    const CoeffVec m2 = broadcast(m[2]), m3 = broadcast(m[3]);
    double *plo = reinterpret_cast<double *>(lo);
    double *phi = reinterpret_cast<double *>(hi);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const __m256d a0 = _mm256_loadu_pd(plo + 2 * k);
        const __m256d a1 = _mm256_loadu_pd(phi + 2 * k);
        const __m256d outLo =
            _mm256_add_pd(mulCoeff(m0, a0), mulCoeff(m1, a1));
        const __m256d outHi =
            _mm256_add_pd(mulCoeff(m2, a0), mulCoeff(m3, a1));
        _mm256_storeu_pd(plo + 2 * k, outLo);
        _mm256_storeu_pd(phi + 2 * k, outHi);
    }
    if (k < n)
        pairTransformScalar(lo + k, hi + k, n - k, m);
}

void
quadTransformAvx2(Complex *a0, Complex *a1, Complex *a2, Complex *a3,
                  std::size_t n, const Matrix4 &m)
{
    CoeffVec c[16];
    for (std::size_t i = 0; i < 16; ++i)
        c[i] = broadcast(m[i]);
    double *rows[4] = {
        reinterpret_cast<double *>(a0), reinterpret_cast<double *>(a1),
        reinterpret_cast<double *>(a2), reinterpret_cast<double *>(a3)};
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        __m256d in[4];
        for (int j = 0; j < 4; ++j)
            in[j] = _mm256_loadu_pd(rows[j] + 2 * k);
        __m256d out[4];
        for (int r = 0; r < 4; ++r) {
            __m256d acc = mulCoeff(c[r * 4], in[0]);
            for (int j = 1; j < 4; ++j)
                acc = _mm256_add_pd(acc, mulCoeff(c[r * 4 + j], in[j]));
            out[r] = acc;
        }
        for (int r = 0; r < 4; ++r)
            _mm256_storeu_pd(rows[r] + 2 * k, out[r]);
    }
    if (k < n)
        quadTransformScalar(a0 + k, a1 + k, a2 + k, a3 + k, n - k, m);
}

} // namespace smq::sim::kernels
