#include "sim/noise.hpp"

#include <algorithm>
#include <cmath>

namespace smq::sim {

NoiseModel
NoiseModel::scaled(double factor) const
{
    NoiseModel out = *this;
    auto clamp01 = [](double p) { return std::clamp(p, 0.0, 1.0); };
    out.p1 = clamp01(p1 * factor);
    out.p2 = clamp01(p2 * factor);
    out.pMeas = clamp01(pMeas * factor);
    out.pReset = clamp01(pReset * factor);
    if (factor > 0.0) {
        out.t1 = t1 / factor;
        out.t2 = t2 / factor;
    } else {
        out.t1 = 1e9;
        out.t2 = 1e9;
    }
    out.enabled = enabled && factor > 0.0;
    return out;
}

double
NoiseModel::dephasingRate() const
{
    if (t2 <= 0.0)
        return 0.0;
    double rate = 1.0 / t2 - 1.0 / (2.0 * t1);
    return std::max(rate, 0.0);
}

double
NoiseModel::idleDampingProbability(double dt) const
{
    if (t1 <= 0.0 || dt <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-dt / t1);
}

double
NoiseModel::idleDephasingProbability(double dt) const
{
    double rate = dephasingRate();
    if (rate <= 0.0 || dt <= 0.0)
        return 0.0;
    // Pauli-twirled pure dephasing: Z flip with prob (1 - e^{-t/Tphi})/2
    return 0.5 * (1.0 - std::exp(-dt * rate));
}

IdleChannel
NoiseModel::idleChannel(double dt) const
{
    return IdleChannel{idleDampingProbability(dt),
                       idleDephasingProbability(dt)};
}

} // namespace smq::sim
