/**
 * @file
 * Dense density-matrix simulator with exact Kraus channels.
 *
 * This is the small-n oracle for the trajectory runner: the same
 * noise model (depolarising gates, idle thermal relaxation, readout
 * error) is applied exactly, without sampling error, so agreement
 * between the two engines validates the trajectory unravelling
 * (see bench_ablation_noise and the sim tests).
 *
 * Supports unitary circuits with terminal measurements; mid-circuit
 * measurement / RESET require outcome branching and are only exposed
 * through the trajectory runner.
 */

#ifndef SMQ_SIM_DENSITY_MATRIX_HPP
#define SMQ_SIM_DENSITY_MATRIX_HPP

#include <complex>
#include <vector>

#include "qc/circuit.hpp"
#include "sim/fusion.hpp"
#include "sim/gate_matrices.hpp"
#include "sim/noise.hpp"
#include "stats/counts.hpp"

namespace smq::sim {

/** A mixed state over n qubits (dense 2^n x 2^n matrix). */
class DensityMatrix
{
  public:
    /** |0..0><0..0| over @p num_qubits qubits. @pre num_qubits <= 13. */
    explicit DensityMatrix(std::size_t num_qubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return dim_; }

    /** Element rho[r][c]. */
    Complex element(std::size_t r, std::size_t c) const;

    /** Apply a one-qubit unitary: rho <- U rho U^dagger. */
    void applyMatrix1(std::size_t q, const Matrix2 &u);

    /** Apply a two-qubit unitary (basis as in gate_matrices.hpp). */
    void applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &u);

    /** Apply one unitary gate. */
    void applyGate(const qc::Gate &gate);

    /** Apply a pre-fused instruction sequence (see sim/fusion.hpp). */
    void applyFused(const std::vector<FusedOp> &ops);

    /** Apply a one-qubit Kraus channel {K_i}: rho <- sum K rho K^dg. */
    void applyKraus1(std::size_t q, const std::vector<Matrix2> &kraus);

    /** One-qubit depolarising channel with probability p. */
    void depolarize1(std::size_t q, double p);

    /** Two-qubit depolarising channel with probability p. */
    void depolarize2(std::size_t qa, std::size_t qb, double p);

    /** Amplitude damping toward |0> with probability gamma. */
    void amplitudeDamp(std::size_t q, double gamma);

    /** Phase damping: Z flip with probability p (Pauli-twirled). */
    void dephase(std::size_t q, double p);

    /**
     * Combined idle-qubit channel: amplitude damping (gamma) followed
     * by Pauli-twirled dephasing (pz), composed in closed form so the
     * per-moment idle loop touches rho once instead of running two
     * Kraus channels back to back.
     */
    void thermalRelax(std::size_t q, double gamma, double pz);

    /** Trace (should remain 1). */
    double trace() const;

    /** Purity Tr(rho^2). */
    double purity() const;

    /** Diagonal probabilities over basis states. */
    std::vector<double> probabilities() const;

  private:
    void checkQubit(std::size_t q) const;

    std::size_t numQubits_;
    std::size_t dim_;
    std::vector<Complex> rho_; // row-major dim x dim
};

/**
 * Exact output distribution of a terminal-measurement circuit under
 * the noise model: gate depolarising + per-moment idle relaxation +
 * readout flips, mirroring the trajectory runner's channel placement.
 */
stats::Distribution
noisyDistribution(const qc::Circuit &circuit, const NoiseModel &noise);

} // namespace smq::sim

#endif // SMQ_SIM_DENSITY_MATRIX_HPP
