#include "sim/fusion.hpp"

#include <optional>
#include <stdexcept>

namespace smq::sim {

namespace {

struct PendingRun
{
    Matrix2 m;
    std::size_t gates = 0;
};

constexpr Matrix2 kIdentity2 = {Complex{1.0, 0.0}, Complex{0.0, 0.0},
                                Complex{0.0, 0.0}, Complex{1.0, 0.0}};

} // namespace

std::vector<FusedOp>
fuseUnitaryCircuit(const qc::Circuit &circuit)
{
    std::vector<FusedOp> ops;
    std::vector<std::optional<PendingRun>> pending(circuit.numQubits());

    auto flush = [&](std::size_t q) {
        if (!pending[q])
            return;
        FusedOp op;
        op.kind = FusedOp::Kind::Unitary1;
        op.q0 = q;
        op.m2 = pending[q]->m;
        op.sourceGates = pending[q]->gates;
        ops.push_back(std::move(op));
        pending[q].reset();
    };

    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE ||
            g.type == qc::GateType::RESET) {
            throw std::invalid_argument(
                "fuseUnitaryCircuit: non-unitary instruction");
        }
        if (g.qubits.size() == 1) {
            std::size_t q = g.qubits[0];
            Matrix2 u = gateMatrix1(g);
            if (pending[q]) {
                // later gate multiplies from the left
                pending[q]->m = multiply(u, pending[q]->m);
                ++pending[q]->gates;
            } else {
                pending[q] = PendingRun{u, 1};
            }
            continue;
        }
        FusedOp op;
        if (g.qubits.size() == 2) {
            // Absorb any pending single-qubit runs on the operands into
            // the 4x4 matrix instead of emitting them as separate ops:
            // the runs act first, so M4' = M4 * (Ua (x) Ub).
            std::size_t qa = g.qubits[0];
            std::size_t qb = g.qubits[1];
            op.kind = FusedOp::Kind::Unitary2;
            op.q0 = qa;
            op.q1 = qb;
            op.m4 = gateMatrix2(g);
            op.sourceGates = 1;
            Matrix2 ua = kIdentity2;
            Matrix2 ub = kIdentity2;
            if (pending[qa]) {
                ua = pending[qa]->m;
                op.sourceGates += pending[qa]->gates;
                pending[qa].reset();
            }
            if (pending[qb]) {
                ub = pending[qb]->m;
                op.sourceGates += pending[qb]->gates;
                pending[qb].reset();
            }
            op.m4 = multiply4(op.m4, kron(ua, ub));
            // Merge with an immediately preceding 2q op on the same
            // ordered pair (intervening 1q gates on other qubits sit in
            // `pending` and commute; any on qa/qb were just absorbed).
            if (!ops.empty() && ops.back().kind == FusedOp::Kind::Unitary2 &&
                ops.back().q0 == qa && ops.back().q1 == qb) {
                ops.back().m4 = multiply4(op.m4, ops.back().m4);
                ops.back().sourceGates += op.sourceGates;
                continue;
            }
        } else {
            for (qc::Qubit q : g.qubits)
                flush(q);
            op.kind = FusedOp::Kind::Passthrough;
            op.gate = g;
        }
        ops.push_back(std::move(op));
    }
    for (std::size_t q = 0; q < pending.size(); ++q)
        flush(q);
    return ops;
}

} // namespace smq::sim
