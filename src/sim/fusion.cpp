#include "sim/fusion.hpp"

#include <optional>
#include <stdexcept>

namespace smq::sim {

namespace {

struct PendingRun
{
    Matrix2 m;
    std::size_t gates = 0;
};

} // namespace

std::vector<FusedOp>
fuseUnitaryCircuit(const qc::Circuit &circuit)
{
    std::vector<FusedOp> ops;
    std::vector<std::optional<PendingRun>> pending(circuit.numQubits());

    auto flush = [&](std::size_t q) {
        if (!pending[q])
            return;
        FusedOp op;
        op.kind = FusedOp::Kind::Unitary1;
        op.q0 = q;
        op.m2 = pending[q]->m;
        op.sourceGates = pending[q]->gates;
        ops.push_back(std::move(op));
        pending[q].reset();
    };

    for (const qc::Gate &g : circuit.gates()) {
        if (g.type == qc::GateType::BARRIER)
            continue;
        if (g.type == qc::GateType::MEASURE ||
            g.type == qc::GateType::RESET) {
            throw std::invalid_argument(
                "fuseUnitaryCircuit: non-unitary instruction");
        }
        if (g.qubits.size() == 1) {
            std::size_t q = g.qubits[0];
            Matrix2 u = gateMatrix1(g);
            if (pending[q]) {
                // later gate multiplies from the left
                pending[q]->m = multiply(u, pending[q]->m);
                ++pending[q]->gates;
            } else {
                pending[q] = PendingRun{u, 1};
            }
            continue;
        }
        for (qc::Qubit q : g.qubits)
            flush(q);
        FusedOp op;
        if (g.qubits.size() == 2) {
            op.kind = FusedOp::Kind::Unitary2;
            op.q0 = g.qubits[0];
            op.q1 = g.qubits[1];
            op.m4 = gateMatrix2(g);
        } else {
            op.kind = FusedOp::Kind::Passthrough;
            op.gate = g;
        }
        ops.push_back(std::move(op));
    }
    for (std::size_t q = 0; q < pending.size(); ++q)
        flush(q);
    return ops;
}

} // namespace smq::sim
