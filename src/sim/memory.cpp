#include "sim/memory.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::sim {

namespace {

constexpr std::size_t kDefaultBudget = std::size_t{4} << 30; // 4 GiB

std::size_t
defaultBudget()
{
    const char *env = std::getenv("SMQ_SIM_MEM_MB");
    if (env != nullptr) {
        char *end = nullptr;
        unsigned long long mb = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && mb > 0)
            return static_cast<std::size_t>(mb) << 20;
    }
    return kDefaultBudget;
}

/** 0 = use defaultBudget(); anything else is an explicit override. */
std::atomic<std::size_t> g_override{0};

} // namespace

std::size_t
memoryBudgetBytes()
{
    std::size_t override = g_override.load(std::memory_order_relaxed);
    if (override != 0)
        return override;
    static const std::size_t from_env = defaultBudget();
    return from_env;
}

void
setMemoryBudgetBytes(std::size_t bytes)
{
    g_override.store(bytes, std::memory_order_relaxed);
}

std::size_t
denseBytes(std::size_t numQubits, std::size_t bytesPerAmp, bool squared)
{
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    // Saturate before the bit count itself can wrap: 2 * numQubits
    // overflows for numQubits > SIZE_MAX / 2, long past any register
    // the planner will ever ask about but exactly the kind of width a
    // fuzzer feeds a budget check.
    if (numQubits >= 8 * sizeof(std::size_t))
        return kMax;
    const std::size_t bits = squared ? 2 * numQubits : numQubits;
    if (bits >= 8 * sizeof(std::size_t))
        return kMax;
#if defined(__SIZEOF_INT128__)
    // Checked 128-bit arithmetic: the product is computed exactly and
    // compared against SIZE_MAX, so a 40-qubit density matrix reports
    // its true (astronomical) cost as saturation, never as a silent
    // wrap to a small number that would pass the budget.
    const unsigned __int128 total =
        (static_cast<unsigned __int128>(1) << bits) *
        static_cast<unsigned __int128>(bytesPerAmp);
    if (total > static_cast<unsigned __int128>(kMax))
        return kMax;
    return static_cast<std::size_t>(total);
#else
    const std::size_t states = std::size_t{1} << bits;
    if (bytesPerAmp != 0 && states > kMax / bytesPerAmp)
        return kMax;
    return states * bytesPerAmp;
#endif
}

void
checkAllocationBudget(const std::string &what, std::size_t bytes)
{
    const std::size_t budget = memoryBudgetBytes();
    if (bytes <= budget) {
        // Every budget-checked simulator allocation is accounted here,
        // so per-job manifests can report how much state a run sized.
        static obs::Counter &alloc_bytes =
            obs::counter(obs::names::kSimAllocBytes);
        alloc_bytes.add(bytes);
        return;
    }
    throw ResourceExhausted(
        what + " needs " + std::to_string(bytes >> 20) +
            " MiB, over the simulator memory budget of " +
            std::to_string(budget >> 20) +
            " MiB (SMQ_SIM_MEM_MB raises it)",
        bytes, budget);
}

} // namespace smq::sim
