/**
 * @file
 * Intra-op kernel execution: threading policy + deterministic reduce.
 *
 * The grid layer parallelises *across* cells; this layer parallelises
 * *inside* one gate application or reduction, splitting the amplitude
 * (or density-matrix row) index space over a shared util::ThreadPool.
 * Three rules keep a parallel run byte-identical to the serial one at
 * any job count:
 *
 *  1. Elementwise kernels partition disjoint index ranges — every
 *     amplitude is computed by exactly the same arithmetic expression
 *     regardless of which thread evaluates it.
 *  2. Reductions accumulate fixed-size chunks (kReduceGrain elements,
 *     a function of the state size only, never of the job count) and
 *     fold the partials in chunk-index order; the serial path uses the
 *     identical chunking, so parallel == serial bit-for-bit.
 *  3. A kernel launched from inside a pool task (a grid cell running
 *     under `--jobs N`) degrades to serial instead of oversubscribing
 *     a second pool — unless a test/fuzz sweep explicitly forces
 *     parallel execution to exercise the threaded paths.
 *
 * Small states stay serial below a size threshold (default 1 << 16
 * amplitudes touched): forking the pool costs more than the sweep.
 */

#ifndef SMQ_SIM_KERNELS_HPP
#define SMQ_SIM_KERNELS_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace smq::sim::kernels {

/** Which complex-arithmetic inner loop the dense kernels run. */
enum class SimdMode {
    Auto,   ///< AVX2 when compiled in and supported at runtime
    Scalar, ///< force the portable fused real/imag loops
    Avx2,   ///< force AVX2 (callers must check avx2Supported())
};

/** Snapshot of the process-wide intra-op execution policy. */
struct KernelConfig
{
    std::size_t jobs = 1;          ///< max threads per kernel (1 = serial)
    std::size_t threshold = 1;     ///< min elements before going parallel
    SimdMode simd = SimdMode::Auto;
    bool forceParallel = false;    ///< ignore the nested-pool guard
};

KernelConfig kernelConfig();

/** Set intra-op thread budget; 0 means util::defaultJobs(). */
void setKernelJobs(std::size_t jobs);

/** Set the elements-touched threshold below which kernels stay serial. */
void setKernelThreshold(std::size_t elements);

/** Select the SIMD dispatch policy. */
void setSimdMode(SimdMode mode);

/**
 * When set, kernels parallelise even from inside a pool task (fuzz
 * oracles and the byte-identity tests use this to drive the threaded
 * paths from worker threads); pool access then blocks instead of
 * falling back to serial.
 */
void setForceParallel(bool force);

/** RAII save/restore of the whole kernel config (tests, fuzz sweeps). */
class KernelConfigGuard
{
  public:
    KernelConfigGuard() : saved_(kernelConfig()) {}
    KernelConfigGuard(const KernelConfigGuard &) = delete;
    KernelConfigGuard &operator=(const KernelConfigGuard &) = delete;
    ~KernelConfigGuard();

  private:
    KernelConfig saved_;
};

/** True when this CPU executes AVX2 (independent of build options). */
bool avx2Supported();

/** True when the resolved dispatch runs the AVX2 inner loops. */
bool usingAvx2();

/**
 * Run body(begin, end) over a partition of [0, n), in parallel when
 * the policy allows (elements >= threshold, jobs > 1, not nested in a
 * pool task unless forced). @p elements is the number of state
 * elements the whole kernel touches — the cost measure the threshold
 * compares against, which may exceed @p n (a density-matrix row pair
 * is dim_ elements wide). Ranges are disjoint and cover [0, n), so
 * elementwise bodies are byte-identical to a serial sweep.
 */
void forEachRange(std::size_t n, std::size_t elements,
                  const std::function<void(std::size_t, std::size_t)> &body);

/** Fixed reduce grain (elements per partial) — independent of jobs. */
inline constexpr std::size_t kReduceGrain = std::size_t{1} << 14;

namespace detail {
/** Run task(chunk) for chunks [0, count), parallel when allowed. */
void dispatchChunks(std::size_t count, std::size_t elements,
                    const std::function<void(std::size_t)> &task);
} // namespace detail

/**
 * Deterministic chunked reduction: partials of kReduceGrain elements
 * each, computed (possibly concurrently) by @p chunk(begin, end) and
 * folded in chunk order. The serial and parallel paths share both the
 * chunking and the fold order, so the result is bitwise identical at
 * any job count. T must be value-initialisable to the additive zero.
 */
template <typename T, typename ChunkFn>
T
reduceChunked(std::size_t n, const ChunkFn &chunk)
{
    if (n == 0)
        return T{};
    const std::size_t count = (n + kReduceGrain - 1) / kReduceGrain;
    if (count == 1)
        return chunk(std::size_t{0}, n);
    std::vector<T> partials(count);
    detail::dispatchChunks(count, n, [&](std::size_t c) {
        const std::size_t begin = c * kReduceGrain;
        const std::size_t end = std::min(n, begin + kReduceGrain);
        partials[c] = chunk(begin, end);
    });
    T total{};
    for (const T &p : partials)
        total += p;
    return total;
}

} // namespace smq::sim::kernels

#endif // SMQ_SIM_KERNELS_HPP
