#include "sim/gate_matrices.hpp"

#include <cmath>
#include <stdexcept>

namespace smq::sim {

namespace {

constexpr Complex kI{0.0, 1.0};

Matrix2
u3Matrix(double theta, double phi, double lambda)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return {Complex{c, 0.0}, -std::exp(kI * lambda) * s,
            std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c};
}

/** Embed a one-qubit matrix acting on operand 1 (the target slot). */
Matrix4
controlled(const Matrix2 &u)
{
    Matrix4 m{};
    m[0 * 4 + 0] = 1.0;
    m[1 * 4 + 1] = 1.0;
    m[2 * 4 + 2] = u[0];
    m[2 * 4 + 3] = u[1];
    m[3 * 4 + 2] = u[2];
    m[3 * 4 + 3] = u[3];
    return m;
}

} // namespace

Matrix2
gateMatrix1(const qc::Gate &gate)
{
    using qc::GateType;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (gate.type) {
      case GateType::I:
        return {1.0, 0.0, 0.0, 1.0};
      case GateType::X:
        return {0.0, 1.0, 1.0, 0.0};
      case GateType::Y:
        return {0.0, -kI, kI, 0.0};
      case GateType::Z:
        return {1.0, 0.0, 0.0, -1.0};
      case GateType::H:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case GateType::S:
        return {1.0, 0.0, 0.0, kI};
      case GateType::SDG:
        return {1.0, 0.0, 0.0, -kI};
      case GateType::T:
        return {1.0, 0.0, 0.0, std::exp(kI * (M_PI / 4.0))};
      case GateType::TDG:
        return {1.0, 0.0, 0.0, std::exp(-kI * (M_PI / 4.0))};
      case GateType::SX:
        return {Complex{0.5, 0.5}, Complex{0.5, -0.5}, Complex{0.5, -0.5},
                Complex{0.5, 0.5}};
      case GateType::SXDG:
        return {Complex{0.5, -0.5}, Complex{0.5, 0.5}, Complex{0.5, 0.5},
                Complex{0.5, -0.5}};
      case GateType::RX: {
        double t = gate.params.at(0);
        double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
        return {Complex{c, 0.0}, -kI * s, -kI * s, Complex{c, 0.0}};
      }
      case GateType::RY: {
        double t = gate.params.at(0);
        double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
        return {Complex{c, 0.0}, Complex{-s, 0.0}, Complex{s, 0.0},
                Complex{c, 0.0}};
      }
      case GateType::RZ: {
        double t = gate.params.at(0);
        return {std::exp(-kI * (t / 2.0)), 0.0, 0.0,
                std::exp(kI * (t / 2.0))};
      }
      case GateType::P:
        return {1.0, 0.0, 0.0, std::exp(kI * gate.params.at(0))};
      case GateType::U3:
        return u3Matrix(gate.params.at(0), gate.params.at(1),
                        gate.params.at(2));
      default:
        throw std::invalid_argument("gateMatrix1: not a one-qubit gate: " +
                                    qc::gateName(gate.type));
    }
}

Matrix4
gateMatrix2(const qc::Gate &gate)
{
    using qc::GateType;
    switch (gate.type) {
      case GateType::CX:
        return controlled({0.0, 1.0, 1.0, 0.0});
      case GateType::CY:
        return controlled({0.0, -kI, kI, 0.0});
      case GateType::CZ:
        return controlled({1.0, 0.0, 0.0, -1.0});
      case GateType::CH: {
        const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
        return controlled({inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2});
      }
      case GateType::CP:
        return controlled({1.0, 0.0, 0.0, std::exp(kI * gate.params.at(0))});
      case GateType::SWAP: {
        Matrix4 m{};
        m[0 * 4 + 0] = 1.0;
        m[1 * 4 + 2] = 1.0;
        m[2 * 4 + 1] = 1.0;
        m[3 * 4 + 3] = 1.0;
        return m;
      }
      case GateType::ISWAP: {
        Matrix4 m{};
        m[0 * 4 + 0] = 1.0;
        m[1 * 4 + 2] = kI;
        m[2 * 4 + 1] = kI;
        m[3 * 4 + 3] = 1.0;
        return m;
      }
      case GateType::RXX: {
        double t = gate.params.at(0);
        double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
        Matrix4 m{};
        m[0 * 4 + 0] = c;
        m[0 * 4 + 3] = -kI * s;
        m[1 * 4 + 1] = c;
        m[1 * 4 + 2] = -kI * s;
        m[2 * 4 + 1] = -kI * s;
        m[2 * 4 + 2] = c;
        m[3 * 4 + 0] = -kI * s;
        m[3 * 4 + 3] = c;
        return m;
      }
      case GateType::RYY: {
        double t = gate.params.at(0);
        double c = std::cos(t / 2.0), s = std::sin(t / 2.0);
        Matrix4 m{};
        m[0 * 4 + 0] = c;
        m[0 * 4 + 3] = kI * s;
        m[1 * 4 + 1] = c;
        m[1 * 4 + 2] = -kI * s;
        m[2 * 4 + 1] = -kI * s;
        m[2 * 4 + 2] = c;
        m[3 * 4 + 0] = kI * s;
        m[3 * 4 + 3] = c;
        return m;
      }
      case GateType::RZZ: {
        double t = gate.params.at(0);
        Complex minus = std::exp(-kI * (t / 2.0));
        Complex plus = std::exp(kI * (t / 2.0));
        Matrix4 m{};
        m[0 * 4 + 0] = minus;
        m[1 * 4 + 1] = plus;
        m[2 * 4 + 2] = plus;
        m[3 * 4 + 3] = minus;
        return m;
      }
      default:
        throw std::invalid_argument("gateMatrix2: not a two-qubit gate: " +
                                    qc::gateName(gate.type));
    }
}

Matrix2
multiply(const Matrix2 &a, const Matrix2 &b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Matrix4
multiply4(const Matrix4 &a, const Matrix4 &b)
{
    Matrix4 out{};
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            Complex sum{0.0, 0.0};
            for (std::size_t k = 0; k < 4; ++k)
                sum += a[i * 4 + k] * b[k * 4 + j];
            out[i * 4 + j] = sum;
        }
    }
    return out;
}

Matrix4
kron(const Matrix2 &a, const Matrix2 &b)
{
    Matrix4 out{};
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            for (std::size_t k = 0; k < 2; ++k) {
                for (std::size_t l = 0; l < 2; ++l) {
                    out[(2 * i + j) * 4 + (2 * k + l)] =
                        a[i * 2 + k] * b[j * 2 + l];
                }
            }
        }
    }
    return out;
}

Matrix2
dagger(const Matrix2 &m)
{
    return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]),
            std::conj(m[3])};
}

double
phaseInvariantDistance(const Matrix2 &a, const Matrix2 &b)
{
    // Align the global phase at the largest entry of a.
    std::size_t k = 0;
    for (std::size_t i = 1; i < 4; ++i) {
        if (std::abs(a[i]) > std::abs(a[k]))
            k = i;
    }
    Complex phase{1.0, 0.0};
    if (std::abs(a[k]) > 1e-12 && std::abs(b[k]) > 1e-12)
        phase = (a[k] / std::abs(a[k])) / (b[k] / std::abs(b[k]));
    double dist = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        dist += std::norm(a[i] - phase * b[i]);
    return std::sqrt(dist);
}

} // namespace smq::sim
