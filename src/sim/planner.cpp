#include "sim/planner.hpp"

#include <algorithm>

#include "sim/memory.hpp"
#include "sim/runner.hpp"
#include "sim/stabilizer.hpp"

namespace smq::sim {

namespace {

const char *
backendToken(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Auto:
        return "auto";
      case BackendKind::Statevector:
        return "statevector";
      case BackendKind::DensityMatrix:
        return "density-matrix";
      case BackendKind::Stabilizer:
        return "stabilizer";
      case BackendKind::Trajectory:
        return "trajectory";
    }
    return "auto";
}

/** Would a dense statevector of this width fit the memory budget? */
bool
statevectorFits(std::size_t width, std::size_t cap)
{
    if (width > cap)
        return false;
    return denseBytes(width, 2 * sizeof(double), false) <=
           memoryBudgetBytes();
}

} // namespace

const char *
toString(BackendKind kind)
{
    return backendToken(kind);
}

std::optional<BackendKind>
backendFromString(const std::string &token)
{
    for (BackendKind kind : kAllBackendKinds) {
        if (token == backendToken(kind))
            return kind;
    }
    return std::nullopt;
}

Plan
planCircuit(const qc::Circuit &circuit, const NoiseModel &noise,
            const PlannerConfig &config)
{
    Plan plan;
    plan.width = circuit.numQubits();
    plan.clifford = isCliffordCircuit(circuit);
    plan.midCircuit = hasMidCircuitOperations(circuit);

    if (config.force != BackendKind::Auto) {
        plan.backend = config.force;
        plan.reason = "forced";
        return plan;
    }

    const std::size_t dm_cutoff =
        std::min(config.maxDensityMatrixQubits, kDensityMatrixHardCap);

    if (plan.clifford) {
        // Small, noiseless, terminal Clifford circuits are cheapest
        // through exact ideal sampling (one dense pass, then
        // multinomial draws); everything else Clifford scales on the
        // tableau — including every noisy case, where the twirled
        // noise channel keeps shots polynomial at any width.
        if (!noise.enabled && !plan.midCircuit &&
            statevectorFits(plan.width, config.maxStatevectorQubits)) {
            plan.backend = BackendKind::Statevector;
            plan.reason = "ideal";
            return plan;
        }
        plan.backend = BackendKind::Stabilizer;
        plan.reason = "clifford";
        return plan;
    }

    if (plan.midCircuit) {
        // Outcome-dependent collapse: one statevector trajectory per
        // shot is the only faithful engine we have.
        plan.backend = BackendKind::Trajectory;
        plan.reason = "mid-circuit";
        return plan;
    }

    if (!noise.enabled) {
        plan.backend = BackendKind::Statevector;
        plan.reason = "ideal";
        return plan;
    }

    // Noisy, terminal, non-Clifford: exact Kraus channels while the
    // 4^n density matrix stays cheaper than the trajectory ensemble,
    // stochastic trajectories beyond the cutoff.
    if (plan.width <= dm_cutoff) {
        plan.backend = BackendKind::DensityMatrix;
        plan.reason = "exact-noise";
        return plan;
    }
    plan.backend = BackendKind::Trajectory;
    plan.reason = "width>dm-cutoff";
    return plan;
}

} // namespace smq::sim
