#include "sim/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/thread_pool.hpp"

namespace smq::sim::kernels {

namespace {

// Process-wide policy knobs. Reads are relaxed atomics on the hot
// path; the pool itself is guarded by gPoolMutex below.
std::atomic<std::size_t> gJobs{0};                 // 0 = defaultJobs()
std::atomic<std::size_t> gThreshold{std::size_t{1} << 16};
std::atomic<int> gSimd{static_cast<int>(SimdMode::Auto)};
std::atomic<bool> gForce{false};

/**
 * The shared intra-op pool. One pool serves every kernel in the
 * process: kernels are short-lived, so serialising access through the
 * mutex (try_lock on the normal path — a busy pool means another
 * kernel is mid-flight and this one just runs serially) is cheaper
 * than per-state pools. Force mode blocks instead, so sweeps driven
 * from many fuzz workers still exercise the parallel path.
 */
std::mutex gPoolMutex;
std::unique_ptr<util::ThreadPool> gPool;
std::size_t gPoolWorkers = 0;

std::size_t
resolvedJobs()
{
    std::size_t jobs = gJobs.load(std::memory_order_relaxed);
    return jobs == 0 ? util::defaultJobs() : jobs;
}

void
countSerial()
{
    static obs::Counter &serial =
        obs::counter(obs::names::kSimKernelSerialOps);
    serial.add();
}

void
countParallel(std::size_t tasks)
{
    static obs::Counter &parallel =
        obs::counter(obs::names::kSimKernelParallelOps);
    static obs::Counter &split =
        obs::counter(obs::names::kSimKernelTasksSplit);
    parallel.add();
    split.add(tasks);
}

} // namespace

KernelConfig
kernelConfig()
{
    KernelConfig cfg;
    cfg.jobs = resolvedJobs();
    cfg.threshold = gThreshold.load(std::memory_order_relaxed);
    cfg.simd = static_cast<SimdMode>(gSimd.load(std::memory_order_relaxed));
    cfg.forceParallel = gForce.load(std::memory_order_relaxed);
    return cfg;
}

void
setKernelJobs(std::size_t jobs)
{
    gJobs.store(jobs, std::memory_order_relaxed);
}

void
setKernelThreshold(std::size_t elements)
{
    gThreshold.store(elements, std::memory_order_relaxed);
}

void
setSimdMode(SimdMode mode)
{
    gSimd.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void
setForceParallel(bool force)
{
    gForce.store(force, std::memory_order_relaxed);
}

KernelConfigGuard::~KernelConfigGuard()
{
    gJobs.store(saved_.jobs, std::memory_order_relaxed);
    gThreshold.store(saved_.threshold, std::memory_order_relaxed);
    gSimd.store(static_cast<int>(saved_.simd), std::memory_order_relaxed);
    gForce.store(saved_.forceParallel, std::memory_order_relaxed);
}

bool
avx2Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
usingAvx2()
{
#ifdef SMQ_HAVE_AVX2
    switch (static_cast<SimdMode>(gSimd.load(std::memory_order_relaxed))) {
      case SimdMode::Scalar:
        return false;
      case SimdMode::Auto:
      case SimdMode::Avx2:
        // Avx2 still requires hardware support: dispatching an illegal
        // instruction is never the right way to honour a config knob.
        return avx2Supported();
    }
    return false;
#else
    return false;
#endif
}

namespace detail {

void
dispatchChunks(std::size_t count, std::size_t elements,
               const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;
    const std::size_t jobs = resolvedJobs();
    const bool force = gForce.load(std::memory_order_relaxed);
    const bool nested = util::inPoolTask() && !force;
    if (count <= 1 || jobs <= 1 || nested ||
        elements < gThreshold.load(std::memory_order_relaxed)) {
        countSerial();
        for (std::size_t c = 0; c < count; ++c)
            task(c);
        return;
    }
    std::unique_lock<std::mutex> lock(gPoolMutex, std::defer_lock);
    if (force) {
        lock.lock();
    } else if (!lock.try_lock()) {
        // Another kernel owns the pool; running serially is always
        // correct (and byte-identical), so don't wait for it.
        countSerial();
        for (std::size_t c = 0; c < count; ++c)
            task(c);
        return;
    }
    const std::size_t workers = jobs - 1;
    if (!gPool || gPoolWorkers != workers) {
        gPool.reset();
        gPool = std::make_unique<util::ThreadPool>(workers);
        gPoolWorkers = workers;
    }
    countParallel(count);
    gPool->parallelFor(count, task);
}

} // namespace detail

void
forEachRange(std::size_t n, std::size_t elements,
             const std::function<void(std::size_t, std::size_t)> &body)
{
    if (n == 0)
        return;
    // Over-decompose mildly (4 tasks per job) so the atomic index
    // hand-off load-balances uneven ranges; the split itself never
    // affects results because ranges partition [0, n) exactly.
    const std::size_t jobs = resolvedJobs();
    const std::size_t tasks = std::min(n, std::max<std::size_t>(1, jobs * 4));
    const std::size_t base = n / tasks;
    const std::size_t rem = n % tasks;
    detail::dispatchChunks(tasks, elements, [&](std::size_t t) {
        const std::size_t begin = t * base + std::min(t, rem);
        const std::size_t end = begin + base + (t < rem ? 1 : 0);
        body(begin, end);
    });
}

} // namespace smq::sim::kernels
