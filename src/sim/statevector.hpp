/**
 * @file
 * Dense state-vector simulator.
 *
 * This is the execution substrate standing in for the paper's QPUs
 * (the HPCA artifact likewise evaluates the suite through circuit
 * simulation). Supports mid-circuit measurement and RESET — required
 * by the error-correction proxy benchmarks — plus Pauli expectation
 * values for the QAOA/VQE/Hamiltonian-simulation score functions.
 *
 * Qubit q maps to bit q of the amplitude index (qubit 0 is the least
 * significant bit).
 */

#ifndef SMQ_SIM_STATEVECTOR_HPP
#define SMQ_SIM_STATEVECTOR_HPP

#include <complex>
#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"
#include "sim/fusion.hpp"
#include "sim/gate_matrices.hpp"
#include "stats/counts.hpp"
#include "stats/rng.hpp"

namespace smq::sim {

/** A normalised pure state over n qubits. */
class StateVector
{
  public:
    /** |0...0> over @p num_qubits qubits. @pre num_qubits <= 26. */
    explicit StateVector(std::size_t num_qubits);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dimension() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }
    Complex amplitude(std::size_t basis_state) const;

    /** Reinitialise to |0...0>. */
    void resetToZero();

    /** Apply a one-qubit matrix to qubit q. */
    void applyMatrix1(std::size_t q, const Matrix2 &m);

    /** Apply a two-qubit matrix (basis |b0 b1>, see gate_matrices). */
    void applyMatrix2(std::size_t q0, std::size_t q1, const Matrix4 &m);

    /**
     * Apply one unitary gate (including CCX / CSWAP, handled as basis
     * permutations). @throws for MEASURE / RESET / BARRIER.
     */
    void applyGate(const qc::Gate &gate);

    /** Apply every unitary gate of a circuit (barriers skipped),
     *  fusing runs of single-qubit gates first (see sim/fusion.hpp).
     *  @throws if the circuit contains MEASURE or RESET. */
    void applyUnitaryCircuit(const qc::Circuit &circuit);

    /** Apply a pre-fused instruction sequence. */
    void applyFused(const std::vector<FusedOp> &ops);

    /** Probability that qubit q reads 1. */
    double probabilityOfOne(std::size_t q) const;

    /**
     * Projectively measure qubit q, collapsing the state.
     * @return the sampled outcome bit.
     */
    int measure(std::size_t q, stats::Rng &rng);

    /**
     * Project qubit q onto the given outcome without sampling:
     * collapse + renormalise as measure() would had it drawn
     * @p outcome, and return that branch's probability. When the
     * branch is impossible (probability 0) the state is left
     * untouched. Used by exact distribution walkers that enumerate
     * both measurement branches.
     */
    double project(std::size_t q, int outcome);

    /** Measure-and-restore-to-|0> (RESET semantics). */
    void reset(std::size_t q, stats::Rng &rng);

    /**
     * One trajectory step of thermal relaxation on an idle qubit:
     * amplitude damping toward |0> with probability @p p_damp
     * (exact jump/no-jump unravelling, renormalised in-place) and a
     * Pauli-twirled dephasing Z-flip with probability @p p_phase.
     * Fused into two passes over the state for the noisy-runner hot
     * path.
     */
    void thermalRelaxationTrajectory(std::size_t q, double p_damp,
                                     double p_phase, stats::Rng &rng);

    /** Sample a full computational-basis outcome without collapsing. */
    std::size_t sampleBasisState(stats::Rng &rng) const;

    /** Exact probabilities of all basis states. */
    std::vector<double> probabilities() const;

    /** <psi| P |psi> for a phased Pauli string (complex in general). */
    Complex expectation(const qc::PauliString &pauli) const;

    /** <psi| Z_support |psi> (product of Z on the given qubits). */
    double expectationZ(const std::vector<std::size_t> &support) const;

    /** |<other|this>|^2. */
    double fidelityWith(const StateVector &other) const;

    /** L2 norm (should stay 1 up to rounding). */
    double norm() const;

    /** Divide by the norm. @throws if the norm is ~0. */
    void normalize();

  private:
    void checkQubit(std::size_t q) const;

    std::size_t numQubits_;
    std::vector<Complex> amps_;
};

/**
 * Exact output distribution over the circuit's classical bits under
 * noiseless execution, assuming measurements are terminal (no gate
 * follows a MEASURE/RESET on the same qubit). Used for ideal reference
 * distributions. @throws if a measurement is not terminal.
 */
stats::Distribution
idealDistribution(const qc::Circuit &circuit);

/**
 * Apply all unitary gates of a circuit (must contain no MEASURE or
 * RESET) and return the final state.
 */
StateVector finalState(const qc::Circuit &circuit);

} // namespace smq::sim

#endif // SMQ_SIM_STATEVECTOR_HPP
