/**
 * @file
 * Stabilizer-tableau (CHP) simulator for Clifford circuits.
 *
 * The paper's scalability principle (Sec. III-A(1)) demands benchmarks
 * that run "to hundreds, thousands [of qubits] and beyond". The GHZ
 * and error-correction proxy benchmarks are pure Clifford circuits, so
 * the Aaronson-Gottesman tableau representation simulates them in
 * O(n^2) space and polynomial time — far beyond the dense simulator's
 * ~20-qubit budget. Stochastic Pauli noise (depolarising, readout
 * flips, Pauli-twirled relaxation) is Clifford-compatible, so noisy
 * execution scales too.
 *
 * Phase convention: each tableau row is a Hermitian Pauli with sign
 * (-1)^r; the standard CHP update rules apply.
 */

#ifndef SMQ_SIM_STABILIZER_HPP
#define SMQ_SIM_STABILIZER_HPP

#include <cstdint>
#include <vector>

#include "qc/circuit.hpp"
#include "sim/runner.hpp"
#include "stats/counts.hpp"
#include "stats/rng.hpp"

namespace smq::sim {

/** An n-qubit stabilizer state, initialised to |0...0>. */
class StabilizerSimulator
{
  public:
    explicit StabilizerSimulator(std::size_t num_qubits);

    std::size_t numQubits() const { return numQubits_; }

    /** Reinitialise to |0...0>. */
    void resetAll();

    /**
     * Apply a Clifford gate (I, X, Y, Z, H, S, SDG, SX, SXDG, CX, CY,
     * CZ, SWAP). @throws std::invalid_argument for anything else.
     */
    void applyGate(const qc::Gate &gate);

    /** True when measuring q would give a deterministic outcome. */
    bool isDeterministic(std::size_t q) const;

    /** Projectively measure qubit q (collapses the tableau). */
    int measure(std::size_t q, stats::Rng &rng);

    /**
     * Measure qubit q forcing the given outcome: collapse onto that
     * branch and return its probability — 0.5 when the outcome is
     * random, 1 or 0 when deterministic (on 0 the tableau is left
     * untouched). Lets exact distribution walkers enumerate both
     * measurement branches of a Clifford circuit.
     */
    double measureForced(std::size_t q, int outcome);

    /** Measure-and-restore-to-|0> (RESET semantics). */
    void reset(std::size_t q, stats::Rng &rng);

    /**
     * Exact tableau equality (bit matrices and signs, scratch row
     * included). The differential tests use this to assert that the
     * pool-parallel row updates leave states bit-identical to serial.
     */
    bool identicalTo(const StabilizerSimulator &other) const;

  private:
    // row-major bit matrices over 2n rows (destabilizers then
    // stabilizers); row index 2n is the CHP scratch row
    bool xBit(std::size_t row, std::size_t q) const;
    bool zBit(std::size_t row, std::size_t q) const;
    void setX(std::size_t row, std::size_t q, bool v);
    void setZ(std::size_t row, std::size_t q, bool v);
    void rowsum(std::size_t h, std::size_t i);
    void clearRow(std::size_t row);
    void copyRow(std::size_t dst, std::size_t src);

    std::size_t numQubits_;
    std::size_t words_;                      ///< 64-bit words per row
    std::vector<std::uint64_t> x_;           ///< (2n+1) x words_
    std::vector<std::uint64_t> z_;
    std::vector<std::uint8_t> r_;            ///< sign bits
};

/** True when every instruction is Clifford / measure / reset / barrier. */
bool isCliffordCircuit(const qc::Circuit &circuit);

/**
 * Shot execution of a Clifford circuit under the same noise model as
 * the dense runner, with amplitude damping replaced by its standard
 * Pauli twirl (px = py = gamma/4, pz from the damped coherence) so
 * every noise event stays Clifford. One tableau trajectory per shot.
 */
stats::Counts runStabilizer(const qc::Circuit &circuit,
                            const RunOptions &options, stats::Rng &rng);

} // namespace smq::sim

#endif // SMQ_SIM_STABILIZER_HPP
