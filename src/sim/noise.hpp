/**
 * @file
 * NISQ noise modelling.
 *
 * The paper evaluates its suite on real QPUs whose dominant error
 * sources are (Table II): imperfect 1q/2q gates, measurement error,
 * and decoherence of idling qubits relative to T1/T2. NoiseModel
 * carries exactly those parameters; the trajectory runner (runner.hpp)
 * and density-matrix simulator apply them.
 *
 * Channels:
 *  - depolarising after each gate on the gate's qubits,
 *  - thermal relaxation (amplitude damping toward |0> with rate 1/T1,
 *    pure dephasing with rate 1/Tphi = 1/T2 - 1/(2 T1)) on idle qubits
 *    for each scheduled moment's duration,
 *  - classical bit-flip on measurement outcomes,
 *  - imperfect RESET (residual excitation).
 */

#ifndef SMQ_SIM_NOISE_HPP
#define SMQ_SIM_NOISE_HPP

#include <cstddef>

namespace smq::sim {

/** One idle window's worth of decoherence, as channel probabilities. */
struct IdleChannel
{
    double damp = 0.0;    ///< amplitude-damping probability
    double dephase = 0.0; ///< Pauli-twirled phase-flip probability
};

/** Device-level noise parameters (times in microseconds). */
struct NoiseModel
{
    bool enabled = false;

    double p1 = 0.0;     ///< 1q gate depolarising probability
    double p2 = 0.0;     ///< 2q gate depolarising probability
    double pMeas = 0.0;  ///< measurement bit-flip probability
    double pReset = 0.0; ///< residual |1> population after RESET

    double t1 = 1e9;    ///< amplitude-damping time constant (us)
    double t2 = 1e9;    ///< dephasing time constant (us)

    double time1q = 0.0;   ///< 1q gate duration (us)
    double time2q = 0.0;   ///< 2q gate duration (us)
    double timeMeas = 0.0; ///< measurement/reset duration (us)

    /** A noiseless model. */
    static NoiseModel ideal() { return NoiseModel{}; }

    /**
     * Uniform scaling of all error probabilities and time/coherence
     * ratios by @p factor (used by the artifact-style noise sweep).
     */
    NoiseModel scaled(double factor) const;

    /** Pure dephasing rate 1/Tphi derived from T1/T2 (>= 0). */
    double dephasingRate() const;

    /** Amplitude-damping probability for an idle window of @p dt us. */
    double idleDampingProbability(double dt) const;

    /** Pure-dephasing phase-flip probability for an idle window. */
    double idleDephasingProbability(double dt) const;

    /**
     * Both idle-decoherence probabilities for a window of @p dt us in
     * one call — every engine (trajectory SV, exact DM, stabilizer
     * twirl) derives its idle channel from this single definition.
     */
    IdleChannel idleChannel(double dt) const;
};

} // namespace smq::sim

#endif // SMQ_SIM_NOISE_HPP
