/**
 * @file
 * Vectorised complex inner loops for the dense simulators.
 *
 * Both dense engines reduce every matrix application to two
 * primitives over contiguous runs of amplitudes:
 *
 *   pairTransform: (lo, hi) <- M2 (lo, hi)  elementwise over a run,
 *   quadTransform: (a0..a3) <- M4 (a0..a3)  elementwise over a run,
 *
 * where each run is a maximal block of indices sharing the same high
 * bits (the subspace expansion makes the low `stride` indices
 * contiguous). The scalar bodies are written in fused real/imag form
 * — one multiply pattern, re = ar*cr - ai*ci / im = ai*cr + ar*ci,
 * matching the AVX2 mul/addsub sequence exactly — so the explicit
 * AVX2 path (built behind the SMQ_SIMD CMake option, selected at
 * runtime via kernels::usingAvx2()) produces bit-identical results
 * and either path can satisfy the byte-identity contract.
 */

#ifndef SMQ_SIM_SIMD_HPP
#define SMQ_SIM_SIMD_HPP

#include <cstddef>

#include "sim/gate_matrices.hpp"

namespace smq::sim::kernels {

/**
 * Complex multiply of coefficient @p c with amplitude @p a in the
 * exact operation order of the AVX2 mul/addsub kernel (so scalar and
 * vector paths agree bitwise). Inline for the short-stride fallbacks
 * in the simulators themselves.
 */
inline Complex
coeffMul(const Complex &c, const Complex &a)
{
    return Complex(a.real() * c.real() - a.imag() * c.imag(),
                   a.imag() * c.real() + a.real() * c.imag());
}

/** lo/hi <- m * (lo, hi)^T elementwise over @p n contiguous entries. */
void pairTransform(Complex *lo, Complex *hi, std::size_t n,
                   const Matrix2 &m);

/** a0..a3 <- m * (a0..a3)^T elementwise over @p n contiguous entries. */
void quadTransform(Complex *a0, Complex *a1, Complex *a2, Complex *a3,
                   std::size_t n, const Matrix4 &m);

/** Scalar reference bodies (exported for the SIMD-equality tests). */
void pairTransformScalar(Complex *lo, Complex *hi, std::size_t n,
                         const Matrix2 &m);
void quadTransformScalar(Complex *a0, Complex *a1, Complex *a2,
                         Complex *a3, std::size_t n, const Matrix4 &m);

/** Bump the sim.kernel.simd_* counter for one dense gate kernel. */
void recordSimdPath();

} // namespace smq::sim::kernels

#endif // SMQ_SIM_SIMD_HPP
