#include "sim/stabilizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "qc/schedule.hpp"
#include "sim/kernels.hpp"

namespace smq::sim {

StabilizerSimulator::StabilizerSimulator(std::size_t num_qubits)
    : numQubits_(num_qubits), words_((num_qubits + 63) / 64)
{
    if (num_qubits == 0)
        throw std::invalid_argument("StabilizerSimulator: n > 0");
    x_.assign((2 * numQubits_ + 1) * words_, 0);
    z_.assign((2 * numQubits_ + 1) * words_, 0);
    r_.assign(2 * numQubits_ + 1, 0);
    resetAll();
}

void
StabilizerSimulator::resetAll()
{
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
    std::fill(r_.begin(), r_.end(), 0);
    // destabilizer i = X_i, stabilizer n+i = Z_i
    for (std::size_t i = 0; i < numQubits_; ++i) {
        setX(i, i, true);
        setZ(numQubits_ + i, i, true);
    }
}

bool
StabilizerSimulator::xBit(std::size_t row, std::size_t q) const
{
    return (x_[row * words_ + q / 64] >> (q % 64)) & 1;
}

bool
StabilizerSimulator::zBit(std::size_t row, std::size_t q) const
{
    return (z_[row * words_ + q / 64] >> (q % 64)) & 1;
}

void
StabilizerSimulator::setX(std::size_t row, std::size_t q, bool v)
{
    std::uint64_t mask = std::uint64_t{1} << (q % 64);
    if (v)
        x_[row * words_ + q / 64] |= mask;
    else
        x_[row * words_ + q / 64] &= ~mask;
}

void
StabilizerSimulator::setZ(std::size_t row, std::size_t q, bool v)
{
    std::uint64_t mask = std::uint64_t{1} << (q % 64);
    if (v)
        z_[row * words_ + q / 64] |= mask;
    else
        z_[row * words_ + q / 64] &= ~mask;
}

void
StabilizerSimulator::clearRow(std::size_t row)
{
    std::fill_n(x_.begin() + static_cast<std::ptrdiff_t>(row * words_),
                words_, 0);
    std::fill_n(z_.begin() + static_cast<std::ptrdiff_t>(row * words_),
                words_, 0);
    r_[row] = 0;
}

void
StabilizerSimulator::copyRow(std::size_t dst, std::size_t src)
{
    std::copy_n(x_.begin() + static_cast<std::ptrdiff_t>(src * words_),
                words_,
                x_.begin() + static_cast<std::ptrdiff_t>(dst * words_));
    std::copy_n(z_.begin() + static_cast<std::ptrdiff_t>(src * words_),
                words_,
                z_.begin() + static_cast<std::ptrdiff_t>(dst * words_));
    r_[dst] = r_[src];
}

void
StabilizerSimulator::rowsum(std::size_t h, std::size_t i)
{
    // phase exponent of i accumulated while multiplying row i into h
    // (Aaronson-Gottesman g function), tracked mod 4. The per-qubit g
    // cases are evaluated for 64 qubits at a time: bitmasks select the
    // qubits whose factor product contributes +1 (plus) or -1 (minus)
    // and a popcount difference replaces the per-bit branch ladder.
    // Bits past numQubits_ are zero in both rows, so they fall in the
    // identity case and contribute nothing.
    long long phase = 2LL * (r_[h] + r_[i]);
    std::uint64_t *xh = x_.data() + h * words_;
    std::uint64_t *zh = z_.data() + h * words_;
    const std::uint64_t *xi = x_.data() + i * words_;
    const std::uint64_t *zi = z_.data() + i * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        const std::uint64_t x1 = xh[w], z1 = zh[w];
        const std::uint64_t x2 = xi[w], z2 = zi[w];
        // g = +1: Y*Z(-> z1 & ~x1), X*Y(-> x1 & z1), Z*X(-> x1 & ~z1)
        const std::uint64_t plus = (x2 & z2 & z1 & ~x1) |
                                   (x2 & ~z2 & x1 & z1) |
                                   (~x2 & z2 & x1 & ~z1);
        // g = -1: Y*X, X*Z, Z*Y
        const std::uint64_t minus = (x2 & z2 & x1 & ~z1) |
                                    (x2 & ~z2 & z1 & ~x1) |
                                    (~x2 & z2 & x1 & z1);
        phase += std::popcount(plus) - std::popcount(minus);
        xh[w] = x1 ^ x2;
        zh[w] = z1 ^ z2;
    }
    phase = ((phase % 4) + 4) % 4;
    r_[h] = static_cast<std::uint8_t>(phase == 2);
}

void
StabilizerSimulator::applyGate(const qc::Gate &gate)
{
    using qc::GateType;
    const std::size_t rows = 2 * numQubits_;
    auto q0 = [&]() { return static_cast<std::size_t>(gate.qubits.at(0)); };
    auto q1 = [&]() { return static_cast<std::size_t>(gate.qubits.at(1)); };
    // Every per-row update below touches only its own row, so the row
    // space splits across the pool; rows * words_ is the cost measure
    // the size threshold compares against (small tableaus stay serial).
    auto forRows = [&](const std::function<void(std::size_t)> &rowBody) {
        kernels::forEachRange(rows, rows * words_,
                              [&](std::size_t b, std::size_t e) {
                                  for (std::size_t row = b; row < e; ++row)
                                      rowBody(row);
                              });
    };

    switch (gate.type) {
      case GateType::I:
        return;
      case GateType::X: {
        std::size_t q = q0();
        forRows([&](std::size_t row) { r_[row] ^= zBit(row, q); });
        return;
      }
      case GateType::Z: {
        std::size_t q = q0();
        forRows([&](std::size_t row) { r_[row] ^= xBit(row, q); });
        return;
      }
      case GateType::Y: {
        std::size_t q = q0();
        forRows([&](std::size_t row) {
            r_[row] ^= xBit(row, q) ^ zBit(row, q);
        });
        return;
      }
      case GateType::H: {
        std::size_t q = q0();
        forRows([&](std::size_t row) {
            bool x = xBit(row, q), z = zBit(row, q);
            r_[row] ^= static_cast<std::uint8_t>(x && z);
            setX(row, q, z);
            setZ(row, q, x);
        });
        return;
      }
      case GateType::S: {
        std::size_t q = q0();
        forRows([&](std::size_t row) {
            bool x = xBit(row, q), z = zBit(row, q);
            r_[row] ^= static_cast<std::uint8_t>(x && z);
            setZ(row, q, x ^ z);
        });
        return;
      }
      case GateType::SDG:
        // SDG = S Z (conjugation-wise S then Z adjusts the sign)
        applyGate(qc::Gate(GateType::S, gate.qubits));
        applyGate(qc::Gate(GateType::Z, gate.qubits));
        return;
      case GateType::SX:
        applyGate(qc::Gate(GateType::H, gate.qubits));
        applyGate(qc::Gate(GateType::S, gate.qubits));
        applyGate(qc::Gate(GateType::H, gate.qubits));
        return;
      case GateType::SXDG:
        applyGate(qc::Gate(GateType::H, gate.qubits));
        applyGate(qc::Gate(GateType::SDG, gate.qubits));
        applyGate(qc::Gate(GateType::H, gate.qubits));
        return;
      case GateType::CX: {
        std::size_t c = q0(), t = q1();
        forRows([&](std::size_t row) {
            bool xc = xBit(row, c), zc = zBit(row, c);
            bool xt = xBit(row, t), zt = zBit(row, t);
            r_[row] ^= static_cast<std::uint8_t>(xc && zt &&
                                                 (xt == zc));
            setX(row, t, xt ^ xc);
            setZ(row, c, zc ^ zt);
        });
        return;
      }
      case GateType::CZ:
        applyGate(qc::Gate(GateType::H, {gate.qubits[1]}));
        applyGate(qc::Gate(GateType::CX, gate.qubits));
        applyGate(qc::Gate(GateType::H, {gate.qubits[1]}));
        return;
      case GateType::CY:
        applyGate(qc::Gate(GateType::SDG, {gate.qubits[1]}));
        applyGate(qc::Gate(GateType::CX, gate.qubits));
        applyGate(qc::Gate(GateType::S, {gate.qubits[1]}));
        return;
      case GateType::SWAP:
        applyGate(qc::Gate(GateType::CX, {gate.qubits[0], gate.qubits[1]}));
        applyGate(qc::Gate(GateType::CX, {gate.qubits[1], gate.qubits[0]}));
        applyGate(qc::Gate(GateType::CX, {gate.qubits[0], gate.qubits[1]}));
        return;
      default:
        throw std::invalid_argument(
            "StabilizerSimulator: non-Clifford gate " +
            qc::gateName(gate.type));
    }
}

bool
StabilizerSimulator::isDeterministic(std::size_t q) const
{
    for (std::size_t p = numQubits_; p < 2 * numQubits_; ++p) {
        if (xBit(p, q))
            return false;
    }
    return true;
}

int
StabilizerSimulator::measure(std::size_t q, stats::Rng &rng)
{
    const std::size_t n = numQubits_;
    // find a stabilizer anticommuting with Z_q
    std::size_t p = 2 * n;
    for (std::size_t row = n; row < 2 * n; ++row) {
        if (xBit(row, q)) {
            p = row;
            break;
        }
    }
    if (p < 2 * n) {
        // random outcome: each rowsum(row, p) writes only row `row`
        // and reads only row p, so all 2n candidates run in parallel
        kernels::forEachRange(
            2 * n, 2 * n * words_, [&](std::size_t b, std::size_t e) {
                for (std::size_t row = b; row < e; ++row) {
                    if (row != p && xBit(row, q))
                        rowsum(row, p);
                }
            });
        copyRow(p - n, p);
        clearRow(p);
        setZ(p, q, true);
        int outcome = rng.bernoulli(0.5) ? 1 : 0;
        r_[p] = static_cast<std::uint8_t>(outcome);
        return outcome;
    }
    // deterministic outcome: accumulate into the scratch row
    const std::size_t scratch = 2 * n;
    clearRow(scratch);
    for (std::size_t i = 0; i < n; ++i) {
        if (xBit(i, q))
            rowsum(scratch, i + n);
    }
    return r_[scratch];
}

double
StabilizerSimulator::measureForced(std::size_t q, int outcome)
{
    const std::size_t n = numQubits_;
    std::size_t p = 2 * n;
    for (std::size_t row = n; row < 2 * n; ++row) {
        if (xBit(row, q)) {
            p = row;
            break;
        }
    }
    if (p < 2 * n) {
        // random outcome: either branch has probability 1/2; parallel
        // over rows exactly as in measure()
        kernels::forEachRange(
            2 * n, 2 * n * words_, [&](std::size_t b, std::size_t e) {
                for (std::size_t row = b; row < e; ++row) {
                    if (row != p && xBit(row, q))
                        rowsum(row, p);
                }
            });
        copyRow(p - n, p);
        clearRow(p);
        setZ(p, q, true);
        r_[p] = static_cast<std::uint8_t>(outcome);
        return 0.5;
    }
    // deterministic outcome: the forced branch either matches (prob 1)
    // or is impossible (prob 0, tableau untouched either way)
    const std::size_t scratch = 2 * n;
    clearRow(scratch);
    for (std::size_t i = 0; i < n; ++i) {
        if (xBit(i, q))
            rowsum(scratch, i + n);
    }
    return r_[scratch] == outcome ? 1.0 : 0.0;
}

void
StabilizerSimulator::reset(std::size_t q, stats::Rng &rng)
{
    if (measure(q, rng) == 1)
        applyGate(qc::Gate(qc::GateType::X,
                           {static_cast<qc::Qubit>(q)}));
}

bool
StabilizerSimulator::identicalTo(const StabilizerSimulator &other) const
{
    return numQubits_ == other.numQubits_ && x_ == other.x_ &&
           z_ == other.z_ && r_ == other.r_;
}

bool
isCliffordCircuit(const qc::Circuit &circuit)
{
    for (const qc::Gate &g : circuit.gates()) {
        switch (g.type) {
          case qc::GateType::MEASURE:
          case qc::GateType::RESET:
          case qc::GateType::BARRIER:
            continue;
          default:
            if (!qc::isClifford(g.type))
                return false;
            // the tableau engine implements this subset directly
            if (g.type == qc::GateType::ISWAP)
                return false;
        }
    }
    return true;
}

namespace {

/** Pauli-twirled amplitude damping + dephasing as X/Y/Z flip probs. */
struct TwirledIdle
{
    double px = 0.0, py = 0.0, pz = 0.0;
};

TwirledIdle
twirlIdle(const NoiseModel &noise, double dt)
{
    TwirledIdle t;
    const IdleChannel idle = noise.idleChannel(dt);
    // standard Pauli twirl of amplitude damping
    t.px = idle.damp / 4.0;
    t.py = idle.damp / 4.0;
    t.pz = std::max(0.0, (1.0 - std::sqrt(1.0 - idle.damp)) / 2.0 -
                             idle.damp / 4.0);
    t.pz += idle.dephase;
    return t;
}

void
applyPauliFlip(StabilizerSimulator &sim, std::size_t q,
               const TwirledIdle &t, stats::Rng &rng)
{
    double u = rng.uniform();
    qc::Qubit qu = static_cast<qc::Qubit>(q);
    if (u < t.px)
        sim.applyGate(qc::Gate(qc::GateType::X, {qu}));
    else if (u < t.px + t.py)
        sim.applyGate(qc::Gate(qc::GateType::Y, {qu}));
    else if (u < t.px + t.py + t.pz)
        sim.applyGate(qc::Gate(qc::GateType::Z, {qu}));
}

} // namespace

stats::Counts
runStabilizer(const qc::Circuit &circuit, const RunOptions &options,
              stats::Rng &rng)
{
    if (!isCliffordCircuit(circuit))
        throw std::invalid_argument(
            "runStabilizer: circuit is not Clifford");
    if (circuit.measureCount() == 0)
        throw std::invalid_argument("runStabilizer: nothing measured");

    qc::Schedule sched = qc::schedule(circuit);
    const auto &gates = circuit.gates();
    const NoiseModel &noise = options.noise;
    StabilizerSimulator sim(circuit.numQubits());
    stats::Counts counts;

    static const qc::GateType paulis[4] = {qc::GateType::I,
                                           qc::GateType::X,
                                           qc::GateType::Y,
                                           qc::GateType::Z};

    // Hoisted shot-loop buffers: reused across shots and moments.
    std::string clbits(circuit.numClbits(), '0');
    std::vector<bool> active(circuit.numQubits(), false);
    for (std::uint64_t shot = 0; shot < options.shots; ++shot) {
        // Same truncation contract as the dense runner: the jobs
        // layer's fault hook must be able to cut any backend short,
        // or planner-routed Clifford cells would silently ignore
        // shot-truncation faults.
        if (options.faultHook && options.faultHook(counts.shots()))
            break;
        sim.resetAll();
        clbits.assign(circuit.numClbits(), '0');
        for (const auto &moment : sched.moments) {
            double duration = 0.0;
            active.assign(circuit.numQubits(), false);
            for (std::size_t idx : moment) {
                const qc::Gate &g = gates[idx];
                for (qc::Qubit q : g.qubits)
                    active[q] = true;
                if (noise.enabled) {
                    duration = std::max(
                        duration,
                        g.type == qc::GateType::MEASURE ||
                                g.type == qc::GateType::RESET
                            ? noise.timeMeas
                            : (g.qubits.size() >= 2 ? noise.time2q
                                                    : noise.time1q));
                }
                switch (g.type) {
                  case qc::GateType::MEASURE: {
                    int outcome = sim.measure(g.qubits[0], rng);
                    if (noise.enabled && rng.bernoulli(noise.pMeas))
                        outcome ^= 1;
                    clbits[static_cast<std::size_t>(g.cbit)] =
                        outcome ? '1' : '0';
                    break;
                  }
                  case qc::GateType::RESET:
                    sim.reset(g.qubits[0], rng);
                    if (noise.enabled && rng.bernoulli(noise.pReset)) {
                        sim.applyGate(
                            qc::Gate(qc::GateType::X, {g.qubits[0]}));
                    }
                    break;
                  default:
                    sim.applyGate(g);
                    if (noise.enabled) {
                        if (g.qubits.size() == 1 &&
                            rng.bernoulli(noise.p1)) {
                            sim.applyGate(qc::Gate(
                                paulis[1 + rng.index(3)],
                                {g.qubits[0]}));
                        } else if (g.qubits.size() >= 2 &&
                                   rng.bernoulli(noise.p2)) {
                            std::size_t choice = rng.index(15) + 1;
                            std::size_t pa = choice / 4, pb = choice % 4;
                            if (pa)
                                sim.applyGate(qc::Gate(paulis[pa],
                                                       {g.qubits[0]}));
                            if (pb)
                                sim.applyGate(qc::Gate(paulis[pb],
                                                       {g.qubits[1]}));
                        }
                    }
                    break;
                }
            }
            if (noise.enabled && duration > 0.0) {
                TwirledIdle idle = twirlIdle(noise, duration);
                for (std::size_t q = 0; q < circuit.numQubits(); ++q) {
                    if (!active[q])
                        applyPauliFlip(sim, q, idle, rng);
                }
            }
        }
        counts.add(clbits);
    }
    return counts;
}

} // namespace smq::sim
