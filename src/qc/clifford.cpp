#include "qc/clifford.hpp"

#include <stdexcept>

namespace smq::qc {

namespace {

/** The (x|z) symplectic bit row of a Pauli string. */
std::vector<std::uint8_t>
symplecticRow(const PauliString &p)
{
    std::size_t n = p.numQubits();
    std::vector<std::uint8_t> row(2 * n, 0);
    for (std::size_t q = 0; q < n; ++q) {
        row[q] = p.xBit(q);
        row[n + q] = p.zBit(q);
    }
    return row;
}

} // namespace

std::vector<PauliString>
independentGenerators(const std::vector<PauliString> &paulis)
{
    std::vector<PauliString> generators;
    std::vector<std::vector<std::uint8_t>> echelon; // reduced rows
    std::vector<std::size_t> pivots;                // pivot column per row

    for (const PauliString &p : paulis) {
        std::vector<std::uint8_t> row = symplecticRow(p);
        for (std::size_t r = 0; r < echelon.size(); ++r) {
            if (row[pivots[r]]) {
                for (std::size_t c = 0; c < row.size(); ++c)
                    row[c] ^= echelon[r][c];
            }
        }
        std::size_t pivot = row.size();
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c]) {
                pivot = c;
                break;
            }
        }
        if (pivot == row.size())
            continue; // dependent on earlier strings
        echelon.push_back(std::move(row));
        pivots.push_back(pivot);
        generators.push_back(p);
    }
    return generators;
}

Circuit
diagonalizationCircuit(const std::vector<PauliString> &commuting,
                       std::size_t num_qubits)
{
    for (std::size_t i = 0; i < commuting.size(); ++i) {
        if (commuting[i].numQubits() != num_qubits)
            throw std::invalid_argument(
                "diagonalizationCircuit: size mismatch");
        for (std::size_t j = i + 1; j < commuting.size(); ++j) {
            if (!commuting[i].commutesWith(commuting[j]))
                throw std::invalid_argument(
                    "diagonalizationCircuit: strings do not commute");
        }
    }

    std::vector<PauliString> gens = independentGenerators(commuting);
    Circuit circuit(num_qubits, 0, "diagonalize");
    std::vector<bool> processed(num_qubits, false);

    auto apply = [&](GateType type, std::vector<Qubit> qubits) {
        Gate gate(type, std::move(qubits));
        for (PauliString &g : gens)
            g.conjugateBy(gate);
        circuit.append(std::move(gate));
    };

    for (std::size_t i = 0; i < gens.size(); ++i) {
        PauliString &g = gens[i];

        // Find a pivot. Commutation with the already-reduced single-Z
        // generators guarantees no X support on processed qubits.
        std::size_t pivot = num_qubits;
        bool x_branch = false;
        for (std::size_t q = 0; q < num_qubits; ++q) {
            if (g.xBit(q)) {
                pivot = q;
                x_branch = true;
                break;
            }
        }
        if (x_branch && processed[pivot])
            throw std::logic_error(
                "diagonalizationCircuit: invariant violated (X on "
                "processed qubit)");

        if (x_branch) {
            // (a) fold all other X support onto the pivot
            for (std::size_t q = 0; q < num_qubits; ++q) {
                if (q != pivot && g.xBit(q)) {
                    apply(GateType::CX, {static_cast<Qubit>(pivot),
                                         static_cast<Qubit>(q)});
                }
            }
            // (b) strip a Y at the pivot down to X
            if (g.zBit(pivot))
                apply(GateType::S, {static_cast<Qubit>(pivot)});
            // (c) clear the Z tail via CZ against the pivot's X
            for (std::size_t q = 0; q < num_qubits; ++q) {
                if (q != pivot && g.zBit(q)) {
                    apply(GateType::CZ, {static_cast<Qubit>(pivot),
                                         static_cast<Qubit>(q)});
                }
            }
            // (d) rotate the lone X into Z
            apply(GateType::H, {static_cast<Qubit>(pivot)});
        } else {
            // Already Z-type; fold multi-qubit support onto a fresh
            // pivot so later H gates cannot disturb this generator.
            for (std::size_t q = 0; q < num_qubits; ++q) {
                if (g.zBit(q) && !processed[q]) {
                    pivot = q;
                    break;
                }
            }
            if (pivot == num_qubits)
                throw std::logic_error(
                    "diagonalizationCircuit: Z-type generator supported "
                    "only on processed qubits (dependence)");
            for (std::size_t q = 0; q < num_qubits; ++q) {
                if (q != pivot && g.zBit(q)) {
                    apply(GateType::CX, {static_cast<Qubit>(q),
                                         static_cast<Qubit>(pivot)});
                }
            }
        }

        if (!(g.isZType() && g.weight() == 1 && g.zBit(pivot)))
            throw std::logic_error(
                "diagonalizationCircuit: reduction failed");
        processed[pivot] = true;
    }
    return circuit;
}

} // namespace smq::qc
