/**
 * @file
 * As-soon-as-possible moment scheduling.
 *
 * The paper's depth-dependent features (critical-depth, parallelism,
 * liveness, measurement; Sec. III-B) are defined over a layered view
 * of the circuit: sequential "moments" in which each qubit is acted on
 * at most once. Schedule materialises that view.
 */

#ifndef SMQ_QC_SCHEDULE_HPP
#define SMQ_QC_SCHEDULE_HPP

#include <cstddef>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::qc {

/** A layered (moment-by-moment) view of a circuit. */
struct Schedule
{
    /** moments[m] holds indices into circuit.gates() scheduled at m. */
    std::vector<std::vector<std::size_t>> moments;

    /** moment[i] = moment assigned to instruction i (barrier: -1). */
    std::vector<std::ptrdiff_t> momentOf;

    /** Circuit depth = number of moments. */
    std::size_t depth() const { return moments.size(); }
};

/**
 * Greedy ASAP scheduling: each non-barrier instruction is placed at
 * 1 + max(frontier of its qubits). A BARRIER advances every qubit's
 * frontier to the current maximum but occupies no moment itself.
 */
Schedule schedule(const Circuit &circuit);

/**
 * The liveness matrix A (paper Eq. 5): A[q][m] = 1 when qubit q is
 * involved in an operation at moment m.
 */
std::vector<std::vector<std::uint8_t>>
livenessMatrix(const Circuit &circuit, const Schedule &sched);

} // namespace smq::qc

#endif // SMQ_QC_SCHEDULE_HPP
