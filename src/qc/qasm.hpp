/**
 * @file
 * OpenQASM 2.0 serialisation.
 *
 * The paper specifies every benchmark "at the level of OpenQASM"
 * (Sec. V) so that any compiler/hardware stack can consume it. This
 * module writes the IR to OpenQASM 2.0 text and parses the dialect
 * back (the qelib1 gate vocabulary used by the suite; user-defined
 * gate bodies are not supported).
 */

#ifndef SMQ_QC_QASM_HPP
#define SMQ_QC_QASM_HPP

#include <string>

#include "qc/circuit.hpp"

namespace smq::qc {

/** Serialise a circuit as OpenQASM 2.0 text. */
std::string toQasm(const Circuit &circuit);

/**
 * Parse OpenQASM 2.0 text produced by toQasm (or any program using a
 * single quantum and single classical register plus the qelib1 gates
 * known to GateType). Parameter expressions support +, -, *, /,
 * parentheses, numeric literals and "pi".
 *
 * @throws std::runtime_error with a line/column message on bad input.
 */
Circuit fromQasm(const std::string &text);

} // namespace smq::qc

#endif // SMQ_QC_QASM_HPP
