#include "qc/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace smq::qc {

Circuit::Circuit(std::size_t num_qubits, std::size_t num_clbits,
                 std::string name)
    : numQubits_(num_qubits), numClbits_(num_clbits), name_(std::move(name))
{
}

void
Circuit::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw std::out_of_range("Circuit: qubit index out of range");
}

void
Circuit::append(Gate gate)
{
    if (gate.type != GateType::BARRIER) {
        if (gate.qubits.size() != gateArity(gate.type))
            throw std::invalid_argument("Circuit::append: wrong arity for " +
                                        gateName(gate.type));
        if (gate.params.size() != gateParamCount(gate.type))
            throw std::invalid_argument(
                "Circuit::append: wrong parameter count for " +
                gateName(gate.type));
    }
    // Barriers take any number of qubit operands (empty = full fence),
    // but the operands must still name distinct, in-range qubits.
    std::set<Qubit> seen;
    for (Qubit q : gate.qubits) {
        checkQubit(q);
        if (!seen.insert(q).second)
            throw std::invalid_argument(
                "Circuit::append: duplicate qubit operand");
    }
    if (gate.type != GateType::BARRIER) {
        if (gate.type == GateType::MEASURE) {
            if (gate.cbit < 0 ||
                static_cast<std::size_t>(gate.cbit) >= numClbits_) {
                throw std::out_of_range(
                    "Circuit::append: classical bit out of range");
            }
        }
    }
    gates_.push_back(std::move(gate));
}

Circuit &
Circuit::add1(GateType type, Qubit q, std::vector<double> params)
{
    append(Gate(type, {q}, std::move(params)));
    return *this;
}

Circuit &
Circuit::add2(GateType type, Qubit a, Qubit b, std::vector<double> params)
{
    append(Gate(type, {a, b}, std::move(params)));
    return *this;
}

Circuit &
Circuit::rx(double theta, Qubit q)
{
    return add1(GateType::RX, q, {theta});
}

Circuit &
Circuit::ry(double theta, Qubit q)
{
    return add1(GateType::RY, q, {theta});
}

Circuit &
Circuit::rz(double theta, Qubit q)
{
    return add1(GateType::RZ, q, {theta});
}

Circuit &
Circuit::p(double lambda, Qubit q)
{
    return add1(GateType::P, q, {lambda});
}

Circuit &
Circuit::u3(double theta, double phi, double lambda, Qubit q)
{
    return add1(GateType::U3, q, {theta, phi, lambda});
}

Circuit &
Circuit::cp(double lambda, Qubit c, Qubit t)
{
    return add2(GateType::CP, c, t, {lambda});
}

Circuit &
Circuit::rxx(double theta, Qubit a, Qubit b)
{
    return add2(GateType::RXX, a, b, {theta});
}

Circuit &
Circuit::ryy(double theta, Qubit a, Qubit b)
{
    return add2(GateType::RYY, a, b, {theta});
}

Circuit &
Circuit::rzz(double theta, Qubit a, Qubit b)
{
    return add2(GateType::RZZ, a, b, {theta});
}

Circuit &
Circuit::ccx(Qubit a, Qubit b, Qubit t)
{
    append(Gate(GateType::CCX, {a, b, t}));
    return *this;
}

Circuit &
Circuit::cswap(Qubit c, Qubit a, Qubit b)
{
    append(Gate(GateType::CSWAP, {c, a, b}));
    return *this;
}

Circuit &
Circuit::measure(Qubit q, std::size_t clbit)
{
    append(Gate(GateType::MEASURE, {q}, {},
                static_cast<std::int32_t>(clbit)));
    return *this;
}

Circuit &
Circuit::barrier()
{
    append(Gate(GateType::BARRIER, {}));
    return *this;
}

Circuit &
Circuit::barrier(std::vector<Qubit> qubits)
{
    append(Gate(GateType::BARRIER, std::move(qubits)));
    return *this;
}

Circuit &
Circuit::measureAll()
{
    if (numClbits_ < numQubits_)
        numClbits_ = numQubits_;
    for (Qubit q = 0; q < numQubits_; ++q)
        measure(q, q);
    return *this;
}

Circuit &
Circuit::compose(const Circuit &other)
{
    if (other.numQubits() > numQubits_ || other.numClbits() > numClbits_)
        throw std::invalid_argument("Circuit::compose: registers too small");
    for (const Gate &g : other.gates())
        append(g);
    return *this;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_, numClbits_, name_.empty() ? "" : name_ + "_inv");
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        if (it->type == GateType::BARRIER) {
            inv.barrier(it->qubits);
            continue;
        }
        inv.append(inverseGate(*it));
    }
    return inv;
}

Circuit
Circuit::remapped(const std::vector<Qubit> &mapping,
                  std::size_t new_num_qubits) const
{
    if (mapping.size() != numQubits_)
        throw std::invalid_argument("Circuit::remapped: mapping size");
    if (new_num_qubits == 0)
        new_num_qubits = numQubits_;
    for (Qubit image : mapping) {
        if (image >= new_num_qubits)
            throw std::out_of_range("Circuit::remapped: image out of range");
    }
    Circuit out(new_num_qubits, numClbits_, name_);
    for (const Gate &g : gates_) {
        Gate mapped = g;
        for (Qubit &q : mapped.qubits)
            q = mapping[q];
        out.append(std::move(mapped));
    }
    return out;
}

std::size_t
Circuit::opCount() const
{
    return static_cast<std::size_t>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.type != GateType::BARRIER; }));
}

std::size_t
Circuit::multiQubitGateCount() const
{
    return static_cast<std::size_t>(std::count_if(
        gates_.begin(), gates_.end(), [](const Gate &g) {
            return g.isUnitary() && g.qubits.size() >= 2;
        }));
}

std::size_t
Circuit::measureCount() const
{
    return static_cast<std::size_t>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.type == GateType::MEASURE; }));
}

std::size_t
Circuit::resetCount() const
{
    return static_cast<std::size_t>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.type == GateType::RESET; }));
}

std::string
Circuit::toString() const
{
    std::ostringstream out;
    out << "Circuit \"" << name_ << "\" (" << numQubits_ << " qubits, "
        << numClbits_ << " clbits, " << gates_.size() << " instructions)\n";
    for (const Gate &g : gates_)
        out << "  " << g.toString() << "\n";
    return out.str();
}

} // namespace smq::qc
