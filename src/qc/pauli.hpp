/**
 * @file
 * Pauli-string algebra with exact phase tracking.
 *
 * A PauliString represents  i^r * prod_q X_q^{x_q} Z_q^{z_q}  for
 * r in Z_4. In this representation Y = i * X Z, so a textbook Pauli
 * string with k Y factors carries r = k (mod 4).
 *
 * The Mermin-Bell benchmark (paper Sec. IV-B) expands the Mermin
 * operator into 2^{n-1} commuting X/Y strings; this module provides
 * the commutation test, products, and exact conjugation by Clifford
 * gates needed to measure all terms in one shared basis.
 */

#ifndef SMQ_QC_PAULI_HPP
#define SMQ_QC_PAULI_HPP

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::qc {

/** A phased Pauli string over n qubits. */
class PauliString
{
  public:
    /** The identity string over @p num_qubits qubits. */
    explicit PauliString(std::size_t num_qubits = 0);

    /**
     * Parse from letters, e.g. "XIYZ" (character q = qubit q).
     * Y factors contribute +1 each to the phase power so the operator
     * equals the literal tensor product of Pauli matrices.
     */
    static PauliString fromLabel(const std::string &label);

    std::size_t numQubits() const { return x_.size(); }

    bool xBit(std::size_t q) const { return x_.at(q); }
    bool zBit(std::size_t q) const { return z_.at(q); }
    void setX(std::size_t q, bool v) { x_.at(q) = v; }
    void setZ(std::size_t q, bool v) { z_.at(q) = v; }

    /** Phase power r: the operator is i^r X^x Z^z. */
    int phasePower() const { return phase_; }
    void setPhasePower(int r) { phase_ = ((r % 4) + 4) % 4; }

    /** Number of non-identity sites. */
    std::size_t weight() const;

    /** True when every site is I or Z (and any phase). */
    bool isZType() const;

    /** True when the full x and z vectors are zero. */
    bool isIdentity() const;

    /**
     * The operator as +/-1 for a Hermitian Z-type string.
     * @throws std::logic_error unless isZType() and the phase is real.
     */
    int sign() const;

    /** Qubits where the string acts non-trivially. */
    std::vector<std::size_t> support() const;

    /** True when this commutes with @p other (symplectic product 0). */
    bool commutesWith(const PauliString &other) const;

    /** Group product: (*this) * other, with exact phase. */
    PauliString operator*(const PauliString &other) const;

    /**
     * In-place conjugation by a Clifford gate: P <- G P G^dagger.
     * Supported gates: I, X, Y, Z, H, S, SDG, SX, SXDG, CX, CY, CZ,
     * SWAP. @throws std::invalid_argument otherwise.
     */
    void conjugateBy(const Gate &gate);

    /**
     * Conjugate through a whole circuit in execution order, producing
     * U P U^dagger where U is the circuit unitary.
     */
    void conjugateByCircuit(const Circuit &circuit);

    /** Label like "+XIYZ", "-iZZ". */
    std::string toString() const;

    bool operator==(const PauliString &other) const = default;
    bool operator<(const PauliString &other) const;

  private:
    std::vector<std::uint8_t> x_;
    std::vector<std::uint8_t> z_;
    int phase_ = 0; // power of i, in {0, 1, 2, 3}
};

} // namespace smq::qc

#endif // SMQ_QC_PAULI_HPP
