#include "qc/interaction_graph.hpp"

#include <algorithm>

namespace smq::qc {

InteractionGraph::InteractionGraph(const Circuit &circuit)
    : degree_(circuit.numQubits(), 0)
{
    for (const Gate &g : circuit.gates()) {
        if (!g.isUnitary() || g.qubits.size() < 2)
            continue;
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            for (std::size_t j = i + 1; j < g.qubits.size(); ++j) {
                Qubit a = std::min(g.qubits[i], g.qubits[j]);
                Qubit b = std::max(g.qubits[i], g.qubits[j]);
                if (edges_.emplace(a, b).second) {
                    ++degree_[a];
                    ++degree_[b];
                }
            }
        }
    }
}

bool
InteractionGraph::connected(Qubit a, Qubit b) const
{
    if (a == b)
        return false;
    return edges_.count({std::min(a, b), std::max(a, b)}) > 0;
}

double
InteractionGraph::normalizedAverageDegree() const
{
    std::size_t n = degree_.size();
    if (n < 2)
        return 0.0;
    std::size_t degree_sum = 0;
    for (std::size_t d : degree_)
        degree_sum += d;
    return static_cast<double>(degree_sum) /
           (static_cast<double>(n) * static_cast<double>(n - 1));
}

} // namespace smq::qc
