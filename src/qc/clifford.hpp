/**
 * @file
 * Clifford synthesis for simultaneous Pauli measurement.
 *
 * Given a set of mutually commuting Pauli strings, synthesise a
 * Clifford circuit U such that U P U^dagger is Z-type for every P in
 * the set. Appending U to a state-preparation circuit lets all the
 * Paulis be estimated from a single Z-basis measurement — the "shared
 * basis" measurement the Mermin-Bell benchmark relies on (paper
 * Sec. IV-B).
 *
 * The synthesis is a symplectic elimination: each independent
 * generator is reduced in turn to a single-qubit Z on a fresh pivot
 * qubit using CX / S / CZ / H gates; commutation guarantees the
 * previously reduced generators are never disturbed.
 */

#ifndef SMQ_QC_CLIFFORD_HPP
#define SMQ_QC_CLIFFORD_HPP

#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"

namespace smq::qc {

/**
 * Extract a maximal linearly independent (over GF(2), phases ignored)
 * subset of the given Pauli strings, preserving first-seen order.
 */
std::vector<PauliString>
independentGenerators(const std::vector<PauliString> &paulis);

/**
 * Synthesise the shared-eigenbasis rotation for a commuting set.
 *
 * @param commuting mutually commuting Pauli strings on n qubits.
 * @param num_qubits register size n.
 * @return a Clifford circuit U with U P U^dagger Z-type for all P.
 * @throws std::invalid_argument if the strings do not pairwise commute.
 */
Circuit diagonalizationCircuit(const std::vector<PauliString> &commuting,
                               std::size_t num_qubits);

} // namespace smq::qc

#endif // SMQ_QC_CLIFFORD_HPP
