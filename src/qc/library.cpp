#include "qc/library.hpp"

#include <cmath>
#include <stdexcept>

namespace smq::qc::library {

namespace {

constexpr double kPi = 3.14159265358979323846;

/**
 * Multi-controlled X on @p controls with work ancillas, via the
 * standard CCX V-chain. Requires controls.size() - 2 ancillas for
 * three or more controls.
 */
void
multiControlledX(Circuit &circuit, const std::vector<Qubit> &controls,
                 Qubit target, const std::vector<Qubit> &ancillas)
{
    if (controls.empty()) {
        circuit.x(target);
        return;
    }
    if (controls.size() == 1) {
        circuit.cx(controls[0], target);
        return;
    }
    if (controls.size() == 2) {
        circuit.ccx(controls[0], controls[1], target);
        return;
    }
    if (ancillas.size() + 2 < controls.size())
        throw std::invalid_argument("multiControlledX: too few ancillas");

    std::size_t k = controls.size();
    // compute chain
    circuit.ccx(controls[0], controls[1], ancillas[0]);
    for (std::size_t i = 2; i < k - 1; ++i)
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
    circuit.ccx(controls[k - 1], ancillas[k - 3], target);
    // uncompute chain
    for (std::size_t i = k - 2; i >= 2; --i)
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
    circuit.ccx(controls[0], controls[1], ancillas[0]);
}

} // namespace

Circuit
qft(std::size_t n, bool with_swaps)
{
    Circuit circuit(n, 0, "qft_" + std::to_string(n));
    for (std::size_t i = 0; i < n; ++i) {
        circuit.h(static_cast<Qubit>(i));
        for (std::size_t j = i + 1; j < n; ++j) {
            double angle = kPi / static_cast<double>(1ull << (j - i));
            circuit.cp(angle, static_cast<Qubit>(j), static_cast<Qubit>(i));
        }
    }
    if (with_swaps) {
        for (std::size_t i = 0; i < n / 2; ++i)
            circuit.swap(static_cast<Qubit>(i),
                         static_cast<Qubit>(n - 1 - i));
    }
    return circuit;
}

Circuit
inverseQft(std::size_t n, bool with_swaps)
{
    Circuit circuit = qft(n, with_swaps).inverse();
    circuit.setName("iqft_" + std::to_string(n));
    return circuit;
}

Circuit
bernsteinVazirani(const std::vector<std::uint8_t> &secret)
{
    std::size_t n = secret.size();
    Circuit circuit(n + 1, n, "bv_" + std::to_string(n));
    Qubit ancilla = static_cast<Qubit>(n);
    circuit.x(ancilla);
    circuit.h(ancilla);
    for (std::size_t i = 0; i < n; ++i)
        circuit.h(static_cast<Qubit>(i));
    for (std::size_t i = 0; i < n; ++i) {
        if (secret[i])
            circuit.cx(static_cast<Qubit>(i), ancilla);
    }
    for (std::size_t i = 0; i < n; ++i) {
        circuit.h(static_cast<Qubit>(i));
        circuit.measure(static_cast<Qubit>(i), i);
    }
    return circuit;
}

Circuit
cuccaroAdder(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument("cuccaroAdder: n must be positive");
    // Layout: qubit 0 = carry-in, a_i = 1 + 2i, b_i = 2 + 2i,
    // carry-out = 2n + 1.
    Circuit circuit(2 * n + 2, 0, "cuccaro_" + std::to_string(n));
    auto a = [&](std::size_t i) { return static_cast<Qubit>(1 + 2 * i); };
    auto b = [&](std::size_t i) { return static_cast<Qubit>(2 + 2 * i); };
    Qubit cin = 0;
    Qubit cout = static_cast<Qubit>(2 * n + 1);

    auto maj = [&](Qubit c, Qubit bq, Qubit aq) {
        circuit.cx(aq, bq);
        circuit.cx(aq, c);
        circuit.ccx(c, bq, aq);
    };
    auto uma = [&](Qubit c, Qubit bq, Qubit aq) {
        circuit.ccx(c, bq, aq);
        circuit.cx(aq, c);
        circuit.cx(c, bq);
    };

    maj(cin, b(0), a(0));
    for (std::size_t i = 1; i < n; ++i)
        maj(a(i - 1), b(i), a(i));
    circuit.cx(a(n - 1), cout);
    for (std::size_t i = n; i-- > 1;)
        uma(a(i - 1), b(i), a(i));
    uma(cin, b(0), a(0));
    return circuit;
}

Circuit
grover(std::size_t n, const std::vector<std::uint8_t> &marked,
       std::size_t iterations)
{
    if (marked.size() != n)
        throw std::invalid_argument("grover: marked string length");
    std::size_t num_ancillas = n >= 3 ? n - 2 : 0;
    Circuit circuit(n + num_ancillas, n, "grover_" + std::to_string(n));
    std::vector<Qubit> search;
    std::vector<Qubit> ancillas;
    for (std::size_t i = 0; i < n; ++i)
        search.push_back(static_cast<Qubit>(i));
    for (std::size_t i = 0; i < num_ancillas; ++i)
        ancillas.push_back(static_cast<Qubit>(n + i));

    // Multi-controlled Z on the search register = H on the last qubit
    // conjugating a multi-controlled X.
    auto mcz = [&]() {
        Qubit target = search.back();
        std::vector<Qubit> controls(search.begin(), search.end() - 1);
        circuit.h(target);
        multiControlledX(circuit, controls, target, ancillas);
        circuit.h(target);
    };

    for (Qubit q : search)
        circuit.h(q);
    for (std::size_t it = 0; it < iterations; ++it) {
        // oracle: phase-flip the marked string
        for (std::size_t i = 0; i < n; ++i) {
            if (!marked[i])
                circuit.x(search[i]);
        }
        mcz();
        for (std::size_t i = 0; i < n; ++i) {
            if (!marked[i])
                circuit.x(search[i]);
        }
        // diffusion
        for (Qubit q : search)
            circuit.h(q);
        for (Qubit q : search)
            circuit.x(q);
        mcz();
        for (Qubit q : search)
            circuit.x(q);
        for (Qubit q : search)
            circuit.h(q);
    }
    for (std::size_t i = 0; i < n; ++i)
        circuit.measure(search[i], i);
    return circuit;
}

Circuit
wState(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument("wState: n must be positive");
    Circuit circuit(n, 0, "wstate_" + std::to_string(n));
    circuit.x(0);
    // Distribute the excitation: a controlled rotation moves amplitude
    // from qubit i to qubit i+1 with weight 1/(n - i), then a CX
    // disentangles the control.
    for (std::size_t i = 0; i + 1 < n; ++i) {
        double remaining = static_cast<double>(n - i);
        double theta = 2.0 * std::acos(std::sqrt(1.0 / remaining));
        Qubit a = static_cast<Qubit>(i);
        Qubit b = static_cast<Qubit>(i + 1);
        // controlled-RY(theta) on b, control a
        circuit.ry(theta / 2.0, b);
        circuit.cx(a, b);
        circuit.ry(-theta / 2.0, b);
        circuit.cx(a, b);
        circuit.cx(b, a);
    }
    return circuit;
}

Circuit
hiddenShift(const std::vector<std::uint8_t> &shift)
{
    std::size_t n = shift.size();
    if (n == 0 || n % 2 != 0)
        throw std::invalid_argument("hiddenShift: n must be even, > 0");
    Circuit circuit(n, n, "hidden_shift_" + std::to_string(n));
    auto oracle = [&]() {
        for (std::size_t i = 0; i + 1 < n; i += 2)
            circuit.cz(static_cast<Qubit>(i), static_cast<Qubit>(i + 1));
    };
    for (std::size_t i = 0; i < n; ++i) {
        circuit.h(static_cast<Qubit>(i));
        if (shift[i])
            circuit.x(static_cast<Qubit>(i));
    }
    oracle();
    for (std::size_t i = 0; i < n; ++i) {
        if (shift[i])
            circuit.x(static_cast<Qubit>(i));
        circuit.h(static_cast<Qubit>(i));
    }
    oracle();
    for (std::size_t i = 0; i < n; ++i) {
        circuit.h(static_cast<Qubit>(i));
        circuit.measure(static_cast<Qubit>(i), i);
    }
    return circuit;
}

Circuit
toffoliChain(std::size_t n)
{
    if (n < 3)
        throw std::invalid_argument("toffoliChain: need at least 3 qubits");
    Circuit circuit(n, 0, "toffoli_chain_" + std::to_string(n));
    for (std::size_t i = 0; i + 2 < n; ++i) {
        circuit.ccx(static_cast<Qubit>(i), static_cast<Qubit>(i + 1),
                    static_cast<Qubit>(i + 2));
    }
    return circuit;
}

Circuit
randomLayered(std::size_t n, std::size_t depth, stats::Rng &rng)
{
    Circuit circuit(n, 0, "random_" + std::to_string(n) + "x" +
                              std::to_string(depth));
    for (std::size_t layer = 0; layer < depth; ++layer) {
        for (std::size_t q = 0; q < n; ++q) {
            circuit.u3(rng.uniform(0.0, kPi), rng.uniform(0.0, 2.0 * kPi),
                       rng.uniform(0.0, 2.0 * kPi), static_cast<Qubit>(q));
        }
        std::size_t offset = layer % 2;
        for (std::size_t q = offset; q + 1 < n; q += 2) {
            circuit.cx(static_cast<Qubit>(q), static_cast<Qubit>(q + 1));
        }
    }
    return circuit;
}

Circuit
ghzLadder(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument("ghzLadder: n must be positive");
    Circuit circuit(n, 0, "ghz_" + std::to_string(n));
    circuit.h(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        circuit.cx(static_cast<Qubit>(i), static_cast<Qubit>(i + 1));
    return circuit;
}

Circuit
swapTest(std::size_t n)
{
    Circuit circuit(2 * n + 1, 1, "swap_test_" + std::to_string(n));
    Qubit ancilla = 0;
    circuit.h(ancilla);
    for (std::size_t i = 0; i < n; ++i) {
        circuit.cswap(ancilla, static_cast<Qubit>(1 + i),
                      static_cast<Qubit>(1 + n + i));
    }
    circuit.h(ancilla);
    circuit.measure(ancilla, 0);
    return circuit;
}

Circuit
incrementer(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument("incrementer: n must be positive");
    Circuit circuit(n, 0, "increment_" + std::to_string(n));
    // Add one: flip bit k iff all lower bits are 1, from the top down.
    for (std::size_t k = n; k-- > 1;) {
        std::vector<Qubit> controls;
        for (std::size_t j = 0; j < k; ++j)
            controls.push_back(static_cast<Qubit>(j));
        if (controls.size() <= 2) {
            multiControlledX(circuit, controls, static_cast<Qubit>(k), {});
        } else {
            // Small n only: fall back to a cascade without ancillas by
            // chaining CCX through the next-lower bits (exact for the
            // increment structure because lower bits are controls).
            // For simplicity restrict to n <= 3 here.
            throw std::invalid_argument(
                "incrementer: n > 3 requires ancillas; use cuccaroAdder");
        }
    }
    circuit.x(0);
    return circuit;
}

Circuit
iterativePhaseEstimation(std::size_t rounds, double theta)
{
    if (rounds == 0)
        throw std::invalid_argument("iterativePhaseEstimation: rounds > 0");
    Circuit circuit(2, rounds + 1, "ipe_" + std::to_string(rounds));
    Qubit ancilla = 0, target = 1;
    circuit.x(target); // P(theta) eigenstate |1>
    for (std::size_t k = rounds; k-- > 0;) {
        circuit.h(ancilla);
        double angle = theta * static_cast<double>(1ull << k);
        circuit.cp(angle, ancilla, target);
        circuit.h(ancilla);
        circuit.measure(ancilla, k);
        circuit.reset(ancilla);
    }
    circuit.measure(target, rounds);
    return circuit;
}

Circuit
quantumPhaseEstimation(std::size_t counting_bits, double theta)
{
    if (counting_bits == 0)
        throw std::invalid_argument(
            "quantumPhaseEstimation: counting_bits > 0");
    std::size_t n = counting_bits + 1;
    Circuit circuit(n, counting_bits, "qpe_" + std::to_string(counting_bits));
    Qubit target = static_cast<Qubit>(counting_bits);
    circuit.x(target); // P(theta) eigenstate |1>
    for (std::size_t k = 0; k < counting_bits; ++k)
        circuit.h(static_cast<Qubit>(k));
    for (std::size_t k = 0; k < counting_bits; ++k) {
        // qubit 0 is the MSB of the counting register (QFT convention)
        double angle = theta * static_cast<double>(
                                   1ull << (counting_bits - 1 - k));
        circuit.cp(angle, static_cast<Qubit>(k), target);
    }
    // inverse QFT on the counting register (qubit k weights 2^k)
    Circuit iqft = inverseQft(counting_bits);
    for (const Gate &g : iqft.gates())
        circuit.append(g);
    for (std::size_t k = 0; k < counting_bits; ++k)
        circuit.measure(static_cast<Qubit>(k), k);
    return circuit;
}

Circuit
deutschJozsa(std::size_t n, bool balanced)
{
    if (n == 0)
        throw std::invalid_argument("deutschJozsa: n > 0");
    Circuit circuit(n + 1, n,
                    std::string("dj_") + (balanced ? "b" : "c") + "_" +
                        std::to_string(n));
    Qubit ancilla = static_cast<Qubit>(n);
    circuit.x(ancilla);
    circuit.h(ancilla);
    for (std::size_t q = 0; q < n; ++q)
        circuit.h(static_cast<Qubit>(q));
    if (balanced)
        circuit.cx(0, ancilla); // f(x) = x_0
    for (std::size_t q = 0; q < n; ++q) {
        circuit.h(static_cast<Qubit>(q));
        circuit.measure(static_cast<Qubit>(q), q);
    }
    return circuit;
}

} // namespace smq::qc::library
