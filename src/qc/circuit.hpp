/**
 * @file
 * The Circuit IR: an ordered list of Gate instructions over a fixed
 * qubit and classical-bit register, with a fluent builder API.
 */

#ifndef SMQ_QC_CIRCUIT_HPP
#define SMQ_QC_CIRCUIT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "qc/gate.hpp"

namespace smq::qc {

/**
 * A quantum circuit over numQubits() qubits and numClbits() classical
 * bits. Instructions execute in list order; the moment scheduler
 * (schedule.hpp) derives the parallel "depth" view the paper's
 * features are defined on.
 */
class Circuit
{
  public:
    Circuit() = default;

    /** Create an empty circuit. Classical bits default to none. */
    explicit Circuit(std::size_t num_qubits, std::size_t num_clbits = 0,
                     std::string name = "");

    std::size_t numQubits() const { return numQubits_; }
    std::size_t numClbits() const { return numClbits_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append a validated instruction. */
    void append(Gate gate);

    /// @name Fluent gate builders
    /// @{
    Circuit &i(Qubit q) { return add1(GateType::I, q); }
    Circuit &x(Qubit q) { return add1(GateType::X, q); }
    Circuit &y(Qubit q) { return add1(GateType::Y, q); }
    Circuit &z(Qubit q) { return add1(GateType::Z, q); }
    Circuit &h(Qubit q) { return add1(GateType::H, q); }
    Circuit &s(Qubit q) { return add1(GateType::S, q); }
    Circuit &sdg(Qubit q) { return add1(GateType::SDG, q); }
    Circuit &t(Qubit q) { return add1(GateType::T, q); }
    Circuit &tdg(Qubit q) { return add1(GateType::TDG, q); }
    Circuit &sx(Qubit q) { return add1(GateType::SX, q); }
    Circuit &sxdg(Qubit q) { return add1(GateType::SXDG, q); }
    Circuit &rx(double theta, Qubit q);
    Circuit &ry(double theta, Qubit q);
    Circuit &rz(double theta, Qubit q);
    Circuit &p(double lambda, Qubit q);
    Circuit &u3(double theta, double phi, double lambda, Qubit q);
    Circuit &cx(Qubit c, Qubit t) { return add2(GateType::CX, c, t); }
    Circuit &cy(Qubit c, Qubit t) { return add2(GateType::CY, c, t); }
    Circuit &cz(Qubit a, Qubit b) { return add2(GateType::CZ, a, b); }
    Circuit &ch(Qubit c, Qubit t) { return add2(GateType::CH, c, t); }
    Circuit &cp(double lambda, Qubit c, Qubit t);
    Circuit &swap(Qubit a, Qubit b) { return add2(GateType::SWAP, a, b); }
    Circuit &iswap(Qubit a, Qubit b) { return add2(GateType::ISWAP, a, b); }
    Circuit &rxx(double theta, Qubit a, Qubit b);
    Circuit &ryy(double theta, Qubit a, Qubit b);
    Circuit &rzz(double theta, Qubit a, Qubit b);
    Circuit &ccx(Qubit a, Qubit b, Qubit t);
    Circuit &cswap(Qubit c, Qubit a, Qubit b);
    Circuit &measure(Qubit q, std::size_t clbit);
    Circuit &reset(Qubit q) { return add1(GateType::RESET, q); }
    /** Full-width barrier: a scheduling fence across all qubits. */
    Circuit &barrier();
    /**
     * Targeted barrier: a scheduling fence across only the listed
     * qubits (empty = all qubits, same as barrier()). Matches OpenQASM
     * `barrier q[i],q[j];` and is preserved by toQasm/fromQasm.
     */
    Circuit &barrier(std::vector<Qubit> qubits);
    /** Measure qubit i into classical bit i for all qubits. */
    Circuit &measureAll();
    /// @}

    /**
     * Append all of @p other's gates (registers must be at least as
     * large as other's). Classical bits are preserved verbatim.
     */
    Circuit &compose(const Circuit &other);

    /**
     * The inverse circuit (gates reversed and individually inverted).
     * @throws std::invalid_argument if any gate is non-unitary.
     */
    Circuit inverse() const;

    /**
     * Relabel qubits: gate operand q becomes mapping[q]. The result has
     * @p new_num_qubits qubits (defaults to this circuit's count).
     * @pre mapping.size() == numQubits() and all images are in range.
     */
    Circuit remapped(const std::vector<Qubit> &mapping,
                     std::size_t new_num_qubits = 0) const;

    /// @name Aggregate counts used by the feature definitions
    /// @{
    /** Number of non-barrier operations (gates + measure + reset). */
    std::size_t opCount() const;
    /** Number of unitary multi-qubit (>= 2 operands) gates. */
    std::size_t multiQubitGateCount() const;
    /** Number of MEASURE instructions. */
    std::size_t measureCount() const;
    /** Number of RESET instructions. */
    std::size_t resetCount() const;
    /// @}

    /** Multi-line dump for debugging. */
    std::string toString() const;

    bool operator==(const Circuit &other) const = default;

  private:
    Circuit &add1(GateType type, Qubit q, std::vector<double> params = {});
    Circuit &add2(GateType type, Qubit a, Qubit b,
                  std::vector<double> params = {});
    void checkQubit(Qubit q) const;

    std::size_t numQubits_ = 0;
    std::size_t numClbits_ = 0;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace smq::qc

#endif // SMQ_QC_CIRCUIT_HPP
