/**
 * @file
 * Gate types and the Gate instruction record.
 *
 * The suite's circuit IR is a flat list of Gate instructions over
 * qubit indices, mirroring the OpenQASM 2.0 abstraction level at which
 * the paper specifies its benchmarks (Sec. V, "Closed Division").
 */

#ifndef SMQ_QC_GATE_HPP
#define SMQ_QC_GATE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace smq::qc {

/** Qubit index type. */
using Qubit = std::uint32_t;

/** The instruction set understood by the IR, simulator and transpiler. */
enum class GateType : std::uint8_t {
    // one-qubit, parameter-free
    I, X, Y, Z, H, S, SDG, T, TDG, SX, SXDG,
    // one-qubit, parameterised
    RX, RY, RZ, P, U3,
    // two-qubit
    CX, CY, CZ, CH, CP, SWAP, ISWAP, RXX, RYY, RZZ,
    // three-qubit
    CCX, CSWAP,
    // non-unitary / structural
    MEASURE, RESET, BARRIER,
};

/** Number of qubit operands a gate type takes (0 for BARRIER = all). */
std::size_t gateArity(GateType type);

/** Number of real parameters a gate type carries. */
std::size_t gateParamCount(GateType type);

/** OpenQASM 2.0 mnemonic (e.g. "cx", "rz", "u3"). */
const std::string &gateName(GateType type);

/** Reverse lookup from the OpenQASM mnemonic; throws on unknown name. */
GateType gateTypeFromName(const std::string &name);

/** True for unitary gate types (excludes MEASURE/RESET/BARRIER). */
bool isUnitary(GateType type);

/** True for unitary gates acting on exactly two qubits. */
bool isTwoQubit(GateType type);

/**
 * True if the gate is Clifford for all parameter values (H, S, CX, ...).
 * Parameterised rotations are never reported Clifford, even at special
 * angles.
 */
bool isClifford(GateType type);

/**
 * One instruction: a gate type, its qubit operands, real parameters,
 * and (for MEASURE) the classical bit written.
 */
struct Gate
{
    GateType type = GateType::I;
    std::vector<Qubit> qubits;
    std::vector<double> params;
    /** Classical bit receiving a MEASURE outcome; -1 when unused. */
    std::int32_t cbit = -1;

    Gate() = default;
    Gate(GateType t, std::vector<Qubit> qs, std::vector<double> ps = {},
         std::int32_t cb = -1)
        : type(t), qubits(std::move(qs)), params(std::move(ps)), cbit(cb) {}

    bool isUnitary() const { return qc::isUnitary(type); }
    bool isTwoQubit() const { return qc::isTwoQubit(type); }

    /** Human/QASM-readable rendering, e.g. "rz(0.5) q[3]". */
    std::string toString() const;

    bool operator==(const Gate &other) const = default;
};

/**
 * The inverse of a unitary gate (e.g. S -> SDG, RZ(t) -> RZ(-t)).
 * @throws std::invalid_argument for non-unitary gates.
 */
Gate inverseGate(const Gate &gate);

} // namespace smq::qc

#endif // SMQ_QC_GATE_HPP
