#include "qc/gate.hpp"

#include <array>
#include <map>
#include <sstream>
#include <stdexcept>

namespace smq::qc {

namespace {

struct GateInfo
{
    const char *name;
    std::size_t arity;
    std::size_t params;
    bool unitary;
    bool clifford;
};

// Indexed by the integer value of GateType; order must match the enum.
const std::array<GateInfo, 30> gateInfoTable = {{
    {"id", 1, 0, true, true},      // I
    {"x", 1, 0, true, true},       // X
    {"y", 1, 0, true, true},       // Y
    {"z", 1, 0, true, true},       // Z
    {"h", 1, 0, true, true},       // H
    {"s", 1, 0, true, true},       // S
    {"sdg", 1, 0, true, true},     // SDG
    {"t", 1, 0, true, false},      // T
    {"tdg", 1, 0, true, false},    // TDG
    {"sx", 1, 0, true, true},      // SX
    {"sxdg", 1, 0, true, true},    // SXDG
    {"rx", 1, 1, true, false},     // RX
    {"ry", 1, 1, true, false},     // RY
    {"rz", 1, 1, true, false},     // RZ
    {"p", 1, 1, true, false},      // P
    {"u3", 1, 3, true, false},     // U3
    {"cx", 2, 0, true, true},      // CX
    {"cy", 2, 0, true, true},      // CY
    {"cz", 2, 0, true, true},      // CZ
    {"ch", 2, 0, true, false},     // CH
    {"cp", 2, 1, true, false},     // CP
    {"swap", 2, 0, true, true},    // SWAP
    {"iswap", 2, 0, true, true},   // ISWAP
    {"rxx", 2, 1, true, false},    // RXX
    {"ryy", 2, 1, true, false},    // RYY
    {"rzz", 2, 1, true, false},    // RZZ
    {"ccx", 3, 0, true, false},    // CCX
    {"cswap", 3, 0, true, false},  // CSWAP
    {"measure", 1, 0, false, false}, // MEASURE
    {"reset", 1, 0, false, false},   // RESET
}};

const GateInfo &
info(GateType type)
{
    auto idx = static_cast<std::size_t>(type);
    if (idx >= gateInfoTable.size()) {
        // BARRIER is handled out-of-line since it has variable arity.
        throw std::invalid_argument("gate info: unknown gate type");
    }
    return gateInfoTable[idx];
}

} // namespace

std::size_t
gateArity(GateType type)
{
    if (type == GateType::BARRIER)
        return 0;
    return info(type).arity;
}

std::size_t
gateParamCount(GateType type)
{
    if (type == GateType::BARRIER)
        return 0;
    return info(type).params;
}

const std::string &
gateName(GateType type)
{
    static const std::string barrier_name = "barrier";
    if (type == GateType::BARRIER)
        return barrier_name;
    // Fully populated at first use (thread-safe magic static): gate
    // names are read concurrently from the parallel grid workers.
    static const std::map<GateType, std::string> cache = [] {
        std::map<GateType, std::string> m;
        for (std::size_t i = 0; i < gateInfoTable.size(); ++i)
            m.emplace(static_cast<GateType>(i), gateInfoTable[i].name);
        return m;
    }();
    info(type); // validates the enum value (throws on junk)
    return cache.at(type);
}

GateType
gateTypeFromName(const std::string &name)
{
    static const std::map<std::string, GateType> lookup = [] {
        std::map<std::string, GateType> m;
        for (std::size_t i = 0; i < gateInfoTable.size(); ++i)
            m.emplace(gateInfoTable[i].name, static_cast<GateType>(i));
        m.emplace("barrier", GateType::BARRIER);
        // common OpenQASM aliases
        m.emplace("u1", GateType::P);
        m.emplace("cnot", GateType::CX);
        return m;
    }();
    auto it = lookup.find(name);
    if (it == lookup.end())
        throw std::invalid_argument("unknown gate name: " + name);
    return it->second;
}

bool
isUnitary(GateType type)
{
    if (type == GateType::BARRIER)
        return false;
    return info(type).unitary;
}

bool
isTwoQubit(GateType type)
{
    return isUnitary(type) && gateArity(type) == 2;
}

bool
isClifford(GateType type)
{
    if (type == GateType::BARRIER)
        return false;
    return info(type).clifford;
}

std::string
Gate::toString() const
{
    std::ostringstream out;
    out << gateName(type);
    if (!params.empty()) {
        out << "(";
        for (std::size_t i = 0; i < params.size(); ++i)
            out << (i ? "," : "") << params[i];
        out << ")";
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        out << (i ? ", q[" : " q[") << qubits[i] << "]";
    if (type == GateType::MEASURE && cbit >= 0)
        out << " -> c[" << cbit << "]";
    return out.str();
}

Gate
inverseGate(const Gate &gate)
{
    if (!gate.isUnitary())
        throw std::invalid_argument("inverseGate: gate is not unitary");
    Gate inv = gate;
    switch (gate.type) {
      case GateType::S:
        inv.type = GateType::SDG;
        break;
      case GateType::SDG:
        inv.type = GateType::S;
        break;
      case GateType::T:
        inv.type = GateType::TDG;
        break;
      case GateType::TDG:
        inv.type = GateType::T;
        break;
      case GateType::SX:
        inv.type = GateType::SXDG;
        break;
      case GateType::SXDG:
        inv.type = GateType::SX;
        break;
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::P:
      case GateType::CP:
      case GateType::RXX:
      case GateType::RYY:
      case GateType::RZZ:
        inv.params[0] = -gate.params[0];
        break;
      case GateType::U3:
        // u3(theta, phi, lambda)^-1 = u3(-theta, -lambda, -phi)
        inv.params = {-gate.params[0], -gate.params[2], -gate.params[1]};
        break;
      case GateType::ISWAP:
        // iswap^-1 = (S^dg x S^dg) iswap (Z x I)(I x Z) ... decompose
        // instead of inventing a new gate type, callers should avoid
        // inverting ISWAP; reject explicitly.
        throw std::invalid_argument("inverseGate: ISWAP not supported");
      default:
        break; // self-inverse gates (X, Y, Z, H, CX, CZ, SWAP, CCX, ...)
    }
    return inv;
}

} // namespace smq::qc
