/**
 * @file
 * A library of standard circuit generators.
 *
 * These kernels serve two purposes: (1) they compose the proxy suites
 * whose feature-space coverage Table I compares against SupermarQ
 * (QASMBench, TriQ, PPL+2020, CBG2021), and (2) they give downstream
 * users ready-made workloads beyond the eight SupermarQ applications.
 */

#ifndef SMQ_QC_LIBRARY_HPP
#define SMQ_QC_LIBRARY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "qc/circuit.hpp"
#include "stats/rng.hpp"

namespace smq::qc::library {

/**
 * Quantum Fourier transform on n qubits (with final reversal swaps).
 * Convention: implements the DFT matrix with qubit 0 as the MOST
 * significant bit (the standard textbook circuit read top-down).
 */
Circuit qft(std::size_t n, bool with_swaps = true);

/** Inverse QFT on n qubits. */
Circuit inverseQft(std::size_t n, bool with_swaps = true);

/**
 * Bernstein-Vazirani with the given secret string (secret.size() data
 * qubits plus one ancilla). Ends with measurement of the data qubits.
 */
Circuit bernsteinVazirani(const std::vector<std::uint8_t> &secret);

/**
 * Cuccaro ripple-carry adder computing b <- a + b for two n-bit
 * registers (2n + 2 qubits: carry-in, a, b, carry-out).
 */
Circuit cuccaroAdder(std::size_t n);

/**
 * Grover search for a marked n-bit string, using n - 2 work ancillas
 * for the multi-controlled phase flip (total 2n - 2 qubits for n >= 3,
 * n qubits for n <= 2). Runs the given number of iterations and
 * measures the search register.
 */
Circuit grover(std::size_t n, const std::vector<std::uint8_t> &marked,
               std::size_t iterations);

/** W-state preparation on n qubits: (|10..0> + |01..0> + ...)/sqrt(n). */
Circuit wState(std::size_t n);

/**
 * Hidden-shift circuit for the bent function f(x) = x0 x1 + x2 x3 + ...
 * (n even) with the given shift; measures all qubits.
 */
Circuit hiddenShift(const std::vector<std::uint8_t> &shift);

/** A chain of n - 2 Toffoli gates across n qubits (n >= 3). */
Circuit toffoliChain(std::size_t n);

/**
 * Random brickwork circuit: @p depth layers, each of random single-
 * qubit rotations on every qubit followed by CX gates on a random
 * matching of adjacent pairs (alternating offset).
 */
Circuit randomLayered(std::size_t n, std::size_t depth, stats::Rng &rng);

/** GHZ/cat-state preparation via a CNOT ladder, without measurement. */
Circuit ghzLadder(std::size_t n);

/** Swap test between two n-qubit registers plus one ancilla. */
Circuit swapTest(std::size_t n);

/** Quantum ripple increment: adds one modulo 2^n using MCX cascades. */
Circuit incrementer(std::size_t n);

/**
 * Iterative phase estimation of a P(theta) eigenphase using a single
 * repeatedly measured-and-reset ancilla (rounds mid-circuit
 * measurements; the classically controlled correction is omitted, as
 * in other mid-circuit-measurement proxy workloads).
 */
Circuit iterativePhaseEstimation(std::size_t rounds,
                                 double theta = 0.4 * 3.14159265358979);

/**
 * Textbook quantum phase estimation of a P(theta) eigenphase with a
 * counting register of @p counting_bits qubits, controlled-power
 * phase gates and an inverse QFT; measures the counting register.
 * The eigenstate qubit is the last one.
 */
Circuit quantumPhaseEstimation(std::size_t counting_bits,
                               double theta = 2.0 * 3.14159265358979 *
                                              0.375);

/**
 * Deutsch-Jozsa on @p n data qubits plus one ancilla. The oracle is
 * constant when @p balanced is false, and the balanced parity oracle
 * f(x) = x_0 otherwise. Measures the data register (all zeros iff
 * constant).
 */
Circuit deutschJozsa(std::size_t n, bool balanced);

} // namespace smq::qc::library

#endif // SMQ_QC_LIBRARY_HPP
