#include "qc/schedule.hpp"

#include <algorithm>

namespace smq::qc {

Schedule
schedule(const Circuit &circuit)
{
    Schedule sched;
    sched.momentOf.assign(circuit.size(), -1);
    // frontier[q] = first moment at which qubit q is free.
    std::vector<std::size_t> frontier(circuit.numQubits(), 0);

    const auto &gates = circuit.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.type == GateType::BARRIER) {
            if (g.qubits.empty()) {
                // full-width fence
                std::size_t fence = 0;
                for (std::size_t f : frontier)
                    fence = std::max(fence, f);
                std::fill(frontier.begin(), frontier.end(), fence);
            } else {
                // targeted fence: only the listed qubits synchronise
                std::size_t fence = 0;
                for (Qubit q : g.qubits)
                    fence = std::max(fence, frontier[q]);
                for (Qubit q : g.qubits)
                    frontier[q] = fence;
            }
            continue;
        }
        std::size_t moment = 0;
        for (Qubit q : g.qubits)
            moment = std::max(moment, frontier[q]);
        if (moment >= sched.moments.size())
            sched.moments.resize(moment + 1);
        sched.moments[moment].push_back(i);
        sched.momentOf[i] = static_cast<std::ptrdiff_t>(moment);
        for (Qubit q : g.qubits)
            frontier[q] = moment + 1;
    }
    return sched;
}

std::vector<std::vector<std::uint8_t>>
livenessMatrix(const Circuit &circuit, const Schedule &sched)
{
    std::vector<std::vector<std::uint8_t>> live(
        circuit.numQubits(),
        std::vector<std::uint8_t>(sched.depth(), 0));
    const auto &gates = circuit.gates();
    for (std::size_t m = 0; m < sched.moments.size(); ++m) {
        for (std::size_t idx : sched.moments[m]) {
            for (Qubit q : gates[idx].qubits)
                live[q][m] = 1;
        }
    }
    return live;
}

} // namespace smq::qc
