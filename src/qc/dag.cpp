#include "qc/dag.hpp"

#include <algorithm>
#include <set>

namespace smq::qc {

GateDag::GateDag(const Circuit &circuit) : circuit_(circuit)
{
    const auto &gates = circuit.gates();
    preds_.resize(gates.size());
    levels_.assign(gates.size(), 0);

    // last[q] = index of the most recent instruction touching qubit q;
    // SIZE_MAX when none.
    constexpr std::size_t none = static_cast<std::size_t>(-1);
    std::vector<std::size_t> last(circuit.numQubits(), none);

    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.type == GateType::BARRIER) {
            // A barrier serialises its qubit set (all qubits when the
            // operand list is empty): every fenced qubit's frontier
            // moves to the newest op among them, so later ops on those
            // qubits depend (transitively) on all earlier ones.
            std::size_t newest = none;
            std::size_t newest_level = 0;
            auto consider = [&](std::size_t q) {
                if (last[q] != none && levels_[last[q]] >= newest_level) {
                    newest = last[q];
                    newest_level = levels_[last[q]];
                }
            };
            if (g.qubits.empty()) {
                for (std::size_t q = 0; q < last.size(); ++q)
                    consider(q);
                if (newest != none)
                    std::fill(last.begin(), last.end(), newest);
            } else {
                for (Qubit q : g.qubits)
                    consider(q);
                if (newest != none) {
                    for (Qubit q : g.qubits)
                        last[q] = newest;
                }
            }
            continue;
        }
        std::set<std::size_t> pred_set;
        std::size_t lvl = 0;
        for (Qubit q : g.qubits) {
            if (last[q] != none) {
                pred_set.insert(last[q]);
                lvl = std::max(lvl, levels_[last[q]]);
            }
        }
        preds_[i].assign(pred_set.begin(), pred_set.end());
        levels_[i] = lvl + 1;
        depth_ = std::max(depth_, levels_[i]);
        for (Qubit q : g.qubits)
            last[q] = i;
    }
}

const std::vector<std::size_t> &
GateDag::predecessors(std::size_t i) const
{
    return preds_.at(i);
}

std::size_t
GateDag::criticalTwoQubitCount() const
{
    if (depth_ == 0)
        return 0;
    // best[i] = max #2q gates along a level-consecutive path ending at
    // instruction i (which is only part of a depth-setting path when
    // the chain of levels 1..level(i) is unbroken, guaranteed by only
    // extending from predecessors one level down).
    const auto &gates = circuit_.gates();
    std::vector<std::size_t> best(gates.size(), 0);
    std::size_t answer = 0;

    // Instructions are already in a topological order (program order).
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].type == GateType::BARRIER)
            continue;
        std::size_t from_pred = 0;
        for (std::size_t p : preds_[i]) {
            if (levels_[p] + 1 == levels_[i])
                from_pred = std::max(from_pred, best[p]);
        }
        best[i] = from_pred + (gates[i].isTwoQubit() ? 1 : 0);
        if (levels_[i] == depth_)
            answer = std::max(answer, best[i]);
    }
    return answer;
}

} // namespace smq::qc
