/**
 * @file
 * The qubit interaction graph of a circuit.
 *
 * Vertices are qubits; an edge joins two qubits that share at least
 * one multi-qubit operation. The program-communication feature (paper
 * Eq. 1) is the graph's average degree normalised by that of the
 * complete graph.
 */

#ifndef SMQ_QC_INTERACTION_GRAPH_HPP
#define SMQ_QC_INTERACTION_GRAPH_HPP

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::qc {

/** Undirected interaction graph over a circuit's qubits. */
class InteractionGraph
{
  public:
    explicit InteractionGraph(const Circuit &circuit);

    std::size_t numQubits() const { return degree_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    /** Degree of qubit q. */
    std::size_t degree(Qubit q) const { return degree_.at(q); }

    /** All edges, each stored once with first < second. */
    const std::set<std::pair<Qubit, Qubit>> &edges() const { return edges_; }

    /** True if qubits a and b interact. */
    bool connected(Qubit a, Qubit b) const;

    /**
     * Normalised average degree: sum of degrees / (N (N - 1)); the
     * program-communication feature. Returns 0 for N < 2.
     */
    double normalizedAverageDegree() const;

  private:
    std::set<std::pair<Qubit, Qubit>> edges_;
    std::vector<std::size_t> degree_;
};

} // namespace smq::qc

#endif // SMQ_QC_INTERACTION_GRAPH_HPP
