#include "qc/qasm.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace smq::qc {

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    if (circuit.numClbits() > 0)
        out << "creg c[" << circuit.numClbits() << "];\n";
    out << std::setprecision(17);
    for (const Gate &g : circuit.gates()) {
        if (g.type == GateType::BARRIER) {
            if (g.qubits.empty()) {
                out << "barrier q;\n";
            } else {
                // Targeted barrier: emit the actual operand list so the
                // fence (and the schedule-derived features) round-trips.
                out << "barrier";
                for (std::size_t i = 0; i < g.qubits.size(); ++i)
                    out << (i ? ",q[" : " q[") << g.qubits[i] << "]";
                out << ";\n";
            }
            continue;
        }
        if (g.type == GateType::MEASURE) {
            out << "measure q[" << g.qubits[0] << "] -> c[" << g.cbit
                << "];\n";
            continue;
        }
        out << gateName(g.type);
        if (!g.params.empty()) {
            out << "(";
            for (std::size_t i = 0; i < g.params.size(); ++i)
                out << (i ? "," : "") << g.params[i];
            out << ")";
        }
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            out << (i ? ",q[" : " q[") << g.qubits[i] << "]";
        out << ";\n";
    }
    return out.str();
}

namespace {

/** A minimal recursive-descent parser for the OpenQASM 2.0 subset. */
class QasmParser
{
  public:
    explicit QasmParser(const std::string &text) : text_(text) {}

    Circuit parse();

  private:
    [[noreturn]] void fail(const std::string &message) const;
    void skipWhitespaceAndComments();
    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return atEnd() ? '\0' : text_[pos_]; }
    char get();
    bool consume(char c);
    void expect(char c);
    bool consumeWord(const std::string &word);
    std::string parseIdentifier();
    std::size_t parseInteger();
    std::string parseStringLiteral();
    std::size_t parseIndexedRegister(const std::string &expected_reg);

    // parameter expression grammar: expr := term (('+'|'-') term)*
    //                               term := factor (('*'|'/') factor)*
    //                               factor := ('-')? atom | '(' expr ')'
    double parseExpr();
    double parseTerm();
    double parseFactor();

    const std::string &text_;
    std::size_t pos_ = 0;
    std::size_t num_qubits_ = 0;
    std::size_t num_clbits_ = 0;
    std::string qreg_name_;
    std::string creg_name_;
};

void
QasmParser::fail(const std::string &message) const
{
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    }
    std::ostringstream out;
    out << "QASM parse error at line " << line << ", column " << col << ": "
        << message;
    throw std::runtime_error(out.str());
}

void
QasmParser::skipWhitespaceAndComments()
{
    while (!atEnd()) {
        if (std::isspace(static_cast<unsigned char>(peek()))) {
            ++pos_;
        } else if (peek() == '/' && pos_ + 1 < text_.size() &&
                   text_[pos_ + 1] == '/') {
            while (!atEnd() && peek() != '\n')
                ++pos_;
        } else {
            break;
        }
    }
}

char
QasmParser::get()
{
    if (atEnd())
        fail("unexpected end of input");
    return text_[pos_++];
}

bool
QasmParser::consume(char c)
{
    skipWhitespaceAndComments();
    if (peek() == c) {
        ++pos_;
        return true;
    }
    return false;
}

void
QasmParser::expect(char c)
{
    if (!consume(c))
        fail(std::string("expected '") + c + "'");
}

bool
QasmParser::consumeWord(const std::string &word)
{
    skipWhitespaceAndComments();
    if (text_.compare(pos_, word.size(), word) != 0)
        return false;
    std::size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
        return false;
    }
    pos_ = after;
    return true;
}

std::string
QasmParser::parseIdentifier()
{
    skipWhitespaceAndComments();
    if (atEnd() || !(std::isalpha(static_cast<unsigned char>(peek())) ||
                     peek() == '_')) {
        fail("expected identifier");
    }
    std::string id;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_')) {
        id.push_back(get());
    }
    return id;
}

std::size_t
QasmParser::parseInteger()
{
    skipWhitespaceAndComments();
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected integer");
    std::size_t value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        value = value * 10 + static_cast<std::size_t>(get() - '0');
    return value;
}

std::string
QasmParser::parseStringLiteral()
{
    skipWhitespaceAndComments();
    expect('"');
    std::string value;
    while (peek() != '"')
        value.push_back(get());
    expect('"');
    return value;
}

std::size_t
QasmParser::parseIndexedRegister(const std::string &expected_reg)
{
    std::string reg = parseIdentifier();
    if (reg != expected_reg)
        fail("unknown register '" + reg + "'");
    expect('[');
    std::size_t index = parseInteger();
    expect(']');
    return index;
}

double
QasmParser::parseExpr()
{
    double value = parseTerm();
    while (true) {
        if (consume('+'))
            value += parseTerm();
        else if (consume('-'))
            value -= parseTerm();
        else
            return value;
    }
}

double
QasmParser::parseTerm()
{
    double value = parseFactor();
    while (true) {
        if (consume('*')) {
            value *= parseFactor();
        } else if (consume('/')) {
            double divisor = parseFactor();
            if (divisor == 0.0)
                fail("division by zero in parameter expression");
            value /= divisor;
        } else {
            return value;
        }
    }
}

double
QasmParser::parseFactor()
{
    skipWhitespaceAndComments();
    if (consume('-'))
        return -parseFactor();
    if (consume('(')) {
        double value = parseExpr();
        expect(')');
        return value;
    }
    if (consumeWord("pi"))
        return M_PI;
    // numeric literal (int / float / scientific)
    std::size_t start = pos_;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '.' || peek() == 'e' || peek() == 'E' ||
                        ((peek() == '+' || peek() == '-') && pos_ > start &&
                         (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        ++pos_;
    }
    if (pos_ == start)
        fail("expected numeric literal");
    const std::string token = text_.substr(start, pos_ - start);
    try {
        // std::stod partial-parses ("1.2.3" -> 1.2, "1e" -> 1); demand
        // that the entire scanned token is a single valid literal.
        std::size_t consumed = 0;
        double value = std::stod(token, &consumed);
        if (consumed != token.size())
            fail("bad numeric literal '" + token + "'");
        return value;
    } catch (const std::invalid_argument &) {
        fail("bad numeric literal '" + token + "'");
    } catch (const std::out_of_range &) {
        fail("numeric literal out of range '" + token + "'");
    }
}

Circuit
QasmParser::parse()
{
    skipWhitespaceAndComments();
    if (!consumeWord("OPENQASM"))
        fail("missing OPENQASM header");
    parseExpr(); // version number, ignored
    expect(';');

    std::vector<Gate> pending;
    while (true) {
        skipWhitespaceAndComments();
        if (atEnd())
            break;
        if (consumeWord("include")) {
            parseStringLiteral();
            expect(';');
            continue;
        }
        if (consumeWord("qreg")) {
            if (!qreg_name_.empty())
                fail("multiple quantum registers are not supported");
            qreg_name_ = parseIdentifier();
            expect('[');
            num_qubits_ = parseInteger();
            expect(']');
            expect(';');
            continue;
        }
        if (consumeWord("creg")) {
            if (!creg_name_.empty())
                fail("multiple classical registers are not supported");
            creg_name_ = parseIdentifier();
            expect('[');
            num_clbits_ = parseInteger();
            expect(']');
            expect(';');
            continue;
        }
        if (consumeWord("measure")) {
            std::size_t q = parseIndexedRegister(qreg_name_);
            skipWhitespaceAndComments();
            if (!(consume('-') && consume('>')))
                fail("expected '->' in measure");
            std::size_t c = parseIndexedRegister(creg_name_);
            expect(';');
            pending.emplace_back(GateType::MEASURE,
                                 std::vector<Qubit>{static_cast<Qubit>(q)},
                                 std::vector<double>{},
                                 static_cast<std::int32_t>(c));
            continue;
        }
        if (consumeWord("reset")) {
            std::size_t q = parseIndexedRegister(qreg_name_);
            expect(';');
            pending.emplace_back(GateType::RESET,
                                 std::vector<Qubit>{static_cast<Qubit>(q)});
            continue;
        }
        if (consumeWord("barrier")) {
            // "barrier q;" is a full fence (empty operand list);
            // "barrier q[0],q[1];" fences exactly the listed qubits.
            // Any bare-register operand widens the fence to everything.
            std::vector<Qubit> fenced;
            bool full_fence = false;
            while (true) {
                skipWhitespaceAndComments();
                std::string reg = parseIdentifier();
                if (reg != qreg_name_)
                    fail("unknown register '" + reg + "'");
                skipWhitespaceAndComments();
                if (consume('[')) {
                    fenced.push_back(static_cast<Qubit>(parseInteger()));
                    expect(']');
                } else {
                    full_fence = true;
                }
                if (!consume(','))
                    break;
            }
            expect(';');
            if (full_fence)
                fenced.clear();
            pending.emplace_back(GateType::BARRIER, std::move(fenced));
            continue;
        }

        std::string name = parseIdentifier();
        GateType type;
        try {
            type = gateTypeFromName(name);
        } catch (const std::invalid_argument &) {
            fail("unknown gate '" + name + "'");
        }
        std::vector<double> params;
        if (consume('(')) {
            if (!consume(')')) {
                do {
                    params.push_back(parseExpr());
                } while (consume(','));
                expect(')');
            }
        }
        std::vector<Qubit> qubits;
        do {
            qubits.push_back(
                static_cast<Qubit>(parseIndexedRegister(qreg_name_)));
        } while (consume(','));
        expect(';');
        pending.emplace_back(type, std::move(qubits), std::move(params));
    }

    if (qreg_name_.empty())
        fail("no quantum register declared");
    Circuit circuit(num_qubits_, num_clbits_);
    for (Gate &g : pending)
        circuit.append(std::move(g));
    return circuit;
}

} // namespace

Circuit
fromQasm(const std::string &text)
{
    return QasmParser(text).parse();
}

} // namespace smq::qc
