#include "qc/pauli.hpp"

#include <sstream>
#include <stdexcept>
#include <tuple>

namespace smq::qc {

PauliString::PauliString(std::size_t num_qubits)
    : x_(num_qubits, 0), z_(num_qubits, 0)
{
}

PauliString
PauliString::fromLabel(const std::string &label)
{
    PauliString p(label.size());
    for (std::size_t q = 0; q < label.size(); ++q) {
        switch (label[q]) {
          case 'I':
            break;
          case 'X':
            p.x_[q] = 1;
            break;
          case 'Z':
            p.z_[q] = 1;
            break;
          case 'Y':
            p.x_[q] = 1;
            p.z_[q] = 1;
            p.phase_ = (p.phase_ + 1) % 4; // Y = i X Z
            break;
          default:
            throw std::invalid_argument(
                std::string("PauliString::fromLabel: bad character '") +
                label[q] + "'");
        }
    }
    return p;
}

std::size_t
PauliString::weight() const
{
    std::size_t w = 0;
    for (std::size_t q = 0; q < x_.size(); ++q)
        w += (x_[q] || z_[q]) ? 1 : 0;
    return w;
}

bool
PauliString::isZType() const
{
    for (std::uint8_t xb : x_) {
        if (xb)
            return false;
    }
    return true;
}

bool
PauliString::isIdentity() const
{
    for (std::size_t q = 0; q < x_.size(); ++q) {
        if (x_[q] || z_[q])
            return false;
    }
    return true;
}

int
PauliString::sign() const
{
    if (!isZType())
        throw std::logic_error("PauliString::sign: not a Z-type string");
    if (phase_ == 0)
        return 1;
    if (phase_ == 2)
        return -1;
    throw std::logic_error("PauliString::sign: imaginary phase");
}

std::vector<std::size_t>
PauliString::support() const
{
    std::vector<std::size_t> qubits;
    for (std::size_t q = 0; q < x_.size(); ++q) {
        if (x_[q] || z_[q])
            qubits.push_back(q);
    }
    return qubits;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    if (numQubits() != other.numQubits())
        throw std::invalid_argument("PauliString: size mismatch");
    int anti = 0;
    for (std::size_t q = 0; q < x_.size(); ++q)
        anti ^= (x_[q] & other.z_[q]) ^ (z_[q] & other.x_[q]);
    return anti == 0;
}

PauliString
PauliString::operator*(const PauliString &other) const
{
    if (numQubits() != other.numQubits())
        throw std::invalid_argument("PauliString: size mismatch");
    PauliString out(numQubits());
    int extra = 0; // factors of -1 from reordering Z^z1 past X^x2
    for (std::size_t q = 0; q < x_.size(); ++q) {
        extra += z_[q] & other.x_[q];
        out.x_[q] = x_[q] ^ other.x_[q];
        out.z_[q] = z_[q] ^ other.z_[q];
    }
    out.phase_ = (phase_ + other.phase_ + 2 * (extra & 1)) % 4;
    return out;
}

void
PauliString::conjugateBy(const Gate &gate)
{
    auto q0 = [&]() { return static_cast<std::size_t>(gate.qubits.at(0)); };
    auto q1 = [&]() { return static_cast<std::size_t>(gate.qubits.at(1)); };
    auto bump = [&](int d) { phase_ = ((phase_ + d) % 4 + 4) % 4; };

    switch (gate.type) {
      case GateType::I:
        break;
      case GateType::X:
        bump(2 * z_[q0()]);
        break;
      case GateType::Y:
        bump(2 * (x_[q0()] ^ z_[q0()]));
        break;
      case GateType::Z:
        bump(2 * x_[q0()]);
        break;
      case GateType::H: {
        std::size_t q = q0();
        bump(2 * (x_[q] & z_[q]));
        std::swap(x_[q], z_[q]);
        break;
      }
      case GateType::S: {
        std::size_t q = q0();
        bump(x_[q]);
        z_[q] ^= x_[q];
        break;
      }
      case GateType::SDG: {
        std::size_t q = q0();
        bump(3 * x_[q]);
        z_[q] ^= x_[q];
        break;
      }
      case GateType::SX:
        // sqrt(X) ~ H S H up to global phase; conjugation composes.
        conjugateBy(Gate(GateType::H, {gate.qubits[0]}));
        conjugateBy(Gate(GateType::S, {gate.qubits[0]}));
        conjugateBy(Gate(GateType::H, {gate.qubits[0]}));
        break;
      case GateType::SXDG:
        conjugateBy(Gate(GateType::H, {gate.qubits[0]}));
        conjugateBy(Gate(GateType::SDG, {gate.qubits[0]}));
        conjugateBy(Gate(GateType::H, {gate.qubits[0]}));
        break;
      case GateType::CX: {
        std::size_t c = q0(), t = q1();
        x_[t] ^= x_[c];
        z_[c] ^= z_[t];
        break;
      }
      case GateType::CZ: {
        std::size_t a = q0(), b = q1();
        bump(2 * (x_[a] & x_[b]));
        z_[a] ^= x_[b];
        z_[b] ^= x_[a];
        break;
      }
      case GateType::CY:
        // CY = (I (x) S) CX (I (x) S^dg): conjugate right-to-left.
        conjugateBy(Gate(GateType::SDG, {gate.qubits[1]}));
        conjugateBy(Gate(GateType::CX, {gate.qubits[0], gate.qubits[1]}));
        conjugateBy(Gate(GateType::S, {gate.qubits[1]}));
        break;
      case GateType::SWAP: {
        std::size_t a = q0(), b = q1();
        std::swap(x_[a], x_[b]);
        std::swap(z_[a], z_[b]);
        break;
      }
      default:
        throw std::invalid_argument(
            "PauliString::conjugateBy: non-Clifford gate " +
            gateName(gate.type));
    }
}

void
PauliString::conjugateByCircuit(const Circuit &circuit)
{
    if (circuit.numQubits() != numQubits())
        throw std::invalid_argument(
            "PauliString::conjugateByCircuit: size mismatch");
    for (const Gate &g : circuit.gates()) {
        if (g.type == GateType::BARRIER)
            continue;
        conjugateBy(g);
    }
}

std::string
PauliString::toString() const
{
    // Translate the (x, z, r) form back into letters; each Y absorbs
    // one factor of i from the stored phase.
    int r = phase_;
    std::string body;
    body.reserve(numQubits());
    for (std::size_t q = 0; q < x_.size(); ++q) {
        if (x_[q] && z_[q]) {
            body.push_back('Y');
            r = (r + 3) % 4;
        } else if (x_[q]) {
            body.push_back('X');
        } else if (z_[q]) {
            body.push_back('Z');
        } else {
            body.push_back('I');
        }
    }
    static const char *prefixes[4] = {"+", "+i", "-", "-i"};
    return std::string(prefixes[r]) + body;
}

bool
PauliString::operator<(const PauliString &other) const
{
    return std::tie(x_, z_, phase_) <
           std::tie(other.x_, other.z_, other.phase_);
}

} // namespace smq::qc
