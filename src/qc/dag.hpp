/**
 * @file
 * Gate dependency DAG and critical-path analysis.
 *
 * Supports the critical-depth feature (paper Eq. 2): the number of
 * two-qubit interactions along the longest dependency path that sets
 * the circuit depth.
 */

#ifndef SMQ_QC_DAG_HPP
#define SMQ_QC_DAG_HPP

#include <cstddef>
#include <vector>

#include "qc/circuit.hpp"

namespace smq::qc {

/**
 * The dependency DAG of a circuit: node i is instruction i (barriers
 * excluded); an edge p -> i exists when p is the most recent prior
 * instruction sharing a qubit with i. A BARRIER makes every later
 * instruction depend on the last instruction of every qubit.
 */
class GateDag
{
  public:
    explicit GateDag(const Circuit &circuit);

    /** Predecessor instruction indices of instruction i. */
    const std::vector<std::size_t> &predecessors(std::size_t i) const;

    /** ASAP level (1-based) of instruction i; 0 for barriers. */
    std::size_t level(std::size_t i) const { return levels_[i]; }

    /** Circuit depth: max level over all instructions. */
    std::size_t depth() const { return depth_; }

    /**
     * Maximum number of two-qubit unitary gates along any dependency
     * path of full length depth() (paper's n_e_d).
     */
    std::size_t criticalTwoQubitCount() const;

  private:
    const Circuit &circuit_;
    std::vector<std::vector<std::size_t>> preds_;
    std::vector<std::size_t> levels_;
    std::size_t depth_ = 0;
};

} // namespace smq::qc

#endif // SMQ_QC_DAG_HPP
