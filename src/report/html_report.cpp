#include "report/html_report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace smq::report {

namespace {

/**
 * Validated categorical palette (fixed slot order, light surface).
 * Identity never rides on color alone: every mark also carries its
 * name in a <title> tooltip and the legend. Past eight distinct span
 * names the remainder folds into neutral gray rather than cycling.
 */
constexpr const char *kSeriesColors[] = {
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948"};
constexpr std::size_t kSeriesColorCount = 8;
constexpr const char *kFoldColor = "#9aa0a6";
/** Single-series marks (sparklines) use categorical slot 1. */
constexpr const char *kAccentColor = "#2a78d6";

/** Span waterfall size cap; the report states what it dropped. */
constexpr std::size_t kMaxWaterfallSpans = 400;

struct TraceSpan
{
    std::string name;
    double tsUs = 0.0;
    double durUs = 0.0;
    std::uint64_t tid = 0;
    std::size_t process = 0; ///< index of the owning trace directory
    std::string traceId;     ///< args["trace.id"], empty when untagged
};

std::string
fmt(double value, int precision = 2)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

/** First-seen-order color assignment (fixed slots, never cycled). */
class SeriesColors
{
  public:
    const char *colorOf(const std::string &name)
    {
        auto it = slots_.find(name);
        if (it == slots_.end()) {
            std::size_t slot = slots_.size();
            it = slots_.emplace(name, slot).first;
            order_.push_back(name);
        }
        return it->second < kSeriesColorCount
                   ? kSeriesColors[it->second]
                   : kFoldColor;
    }
    const std::vector<std::string> &order() const { return order_; }

  private:
    std::map<std::string, std::size_t> slots_;
    std::vector<std::string> order_;
};

/** trace.json -> spans; empty + note on any problem (never throws). */
std::vector<TraceSpan>
loadTraceSpans(const std::string &traceDir, std::string &note)
{
    std::vector<TraceSpan> spans;
    const std::string path = traceDir + "/trace.json";
    std::ifstream in(path);
    if (!in) {
        note = "no trace.json under " + traceDir;
        return spans;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        obs::JsonValue root = obs::parseJson(buffer.str());
        const obs::JsonValue *events = root.find("traceEvents");
        if (events == nullptr) {
            note = path + " has no traceEvents";
            return spans;
        }
        for (const obs::JsonValue &e : events->array) {
            TraceSpan span;
            span.name = e.at("name").asString();
            span.tsUs = e.at("ts").asDouble();
            span.durUs = e.at("dur").asDouble();
            span.tid = e.at("tid").asU64();
            if (const obs::JsonValue *args = e.find("args")) {
                if (const obs::JsonValue *id = args->find("trace.id"))
                    span.traceId = id->asString();
            }
            spans.push_back(std::move(span));
        }
        if (spans.empty())
            note = path + " recorded no spans (fully cached run?)";
    } catch (const std::exception &err) {
        note = std::string("could not parse ") + path + ": " +
               err.what();
        spans.clear();
    }
    return spans;
}

/**
 * Load every directory as one process, normalizing each directory's
 * timestamps to its own earliest span. Steady-clock epochs differ
 * between processes, so cross-process offsets are meaningless noise —
 * zeroing them per process is what makes the stitched view (and the
 * merged Chrome trace) reproducible across runs.
 */
std::vector<TraceSpan>
loadMultiProcessSpans(const std::vector<std::string> &traceDirs,
                      std::string &note)
{
    std::vector<TraceSpan> all;
    std::string notes;
    for (std::size_t p = 0; p < traceDirs.size(); ++p) {
        std::string dir_note;
        std::vector<TraceSpan> spans =
            loadTraceSpans(traceDirs[p], dir_note);
        if (!dir_note.empty())
            notes += (notes.empty() ? "" : "; ") + dir_note;
        if (spans.empty())
            continue;
        double min_ts = spans.front().tsUs;
        for (const TraceSpan &s : spans)
            min_ts = std::min(min_ts, s.tsUs);
        for (TraceSpan &s : spans) {
            s.tsUs -= min_ts;
            s.process = p;
            all.push_back(std::move(s));
        }
    }
    if (all.empty() && notes.empty())
        notes = "no spans in any trace directory";
    note = notes;
    return all;
}

void
renderWaterfall(std::ostream &out, std::vector<TraceSpan> spans,
                const std::string &note)
{
    out << "<h2>Span waterfall</h2>\n";
    if (spans.empty()) {
        out << "<p class=\"muted\">" << htmlEscape(note)
            << " &mdash; run with <code>--trace DIR</code> to get a "
               "waterfall.</p>\n";
        return;
    }
    std::size_t dropped = 0;
    if (spans.size() > kMaxWaterfallSpans) {
        std::sort(spans.begin(), spans.end(),
                  [](const TraceSpan &a, const TraceSpan &b) {
                      return a.durUs > b.durUs;
                  });
        dropped = spans.size() - kMaxWaterfallSpans;
        spans.resize(kMaxWaterfallSpans);
    }
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  if (a.process != b.process)
                      return a.process < b.process;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.durUs > b.durUs;
              });

    double min_ts = spans.front().tsUs, max_end = 0.0;
    bool multi_process = false;
    std::set<std::pair<std::size_t, std::uint64_t>> tid_set;
    for (const TraceSpan &s : spans) {
        min_ts = std::min(min_ts, s.tsUs);
        max_end = std::max(max_end, s.tsUs + s.durUs);
        tid_set.insert({s.process, s.tid});
        multi_process = multi_process || s.process != 0;
    }
    const double span_us = std::max(max_end - min_ts, 1.0);
    // One lane per (process, thread): a stitched multi-process trace
    // keeps each process's threads in their own rows.
    std::map<std::pair<std::size_t, std::uint64_t>, std::size_t> lane;
    for (const auto &key : tid_set)
        lane.emplace(key, lane.size());

    const double plot_x = 64.0, plot_w = 880.0;
    const double lane_h = 18.0, lane_gap = 4.0;
    const double plot_h =
        static_cast<double>(lane.size()) * (lane_h + lane_gap);
    const double height = plot_h + 34.0;

    SeriesColors colors;
    out << "<svg width=\"960\" height=\"" << fmt(height, 0)
        << "\" role=\"img\" aria-label=\"span waterfall\">\n";
    for (const auto &[key, row] : lane) {
        const double y =
            static_cast<double>(row) * (lane_h + lane_gap);
        out << "<text x=\"4\" y=\"" << fmt(y + lane_h - 5.0, 1)
            << "\" class=\"axis\">";
        if (multi_process)
            out << "p" << key.first << "/";
        out << "t" << key.second << "</text>\n";
    }
    for (const TraceSpan &s : spans) {
        const double x =
            plot_x + (s.tsUs - min_ts) / span_us * plot_w;
        const double w =
            std::max(s.durUs / span_us * plot_w, 0.75);
        const double y =
            static_cast<double>(lane.at({s.process, s.tid})) *
            (lane_h + lane_gap);
        out << "<rect x=\"" << fmt(x, 2) << "\" y=\"" << fmt(y, 1)
            << "\" width=\"" << fmt(w, 2) << "\" height=\""
            << fmt(lane_h, 0) << "\" rx=\"2\" fill=\""
            << colors.colorOf(s.name) << "\"><title>"
            << htmlEscape(s.name) << ": " << fmt(s.durUs / 1000.0, 3)
            << " ms (";
        if (multi_process)
            out << "process " << s.process << ", ";
        out << "thread " << s.tid;
        if (!s.traceId.empty())
            out << ", trace " << htmlEscape(s.traceId);
        out << ")</title></rect>\n";
    }
    // Recessive time axis: baseline plus end labels only.
    out << "<line x1=\"" << fmt(plot_x, 0) << "\" y1=\""
        << fmt(plot_h + 6.0, 1) << "\" x2=\""
        << fmt(plot_x + plot_w, 0) << "\" y2=\"" << fmt(plot_h + 6.0, 1)
        << "\" stroke=\"#d7d7d7\"/>\n"
        << "<text x=\"" << fmt(plot_x, 0) << "\" y=\""
        << fmt(plot_h + 22.0, 1) << "\" class=\"axis\">0 ms</text>\n"
        << "<text x=\"" << fmt(plot_x + plot_w, 0) << "\" y=\""
        << fmt(plot_h + 22.0, 1)
        << "\" class=\"axis\" text-anchor=\"end\">"
        << fmt(span_us / 1000.0, 1) << " ms</text>\n</svg>\n";

    out << "<p class=\"muted\">";
    for (const std::string &name : colors.order()) {
        out << "<span class=\"swatch\" style=\"background:"
            << colors.colorOf(name) << "\"></span>"
            << htmlEscape(name) << " &nbsp; ";
    }
    out << "</p>\n";
    if (dropped > 0) {
        out << "<p class=\"muted\">showing the " << kMaxWaterfallSpans
            << " longest spans; " << dropped
            << " shorter spans omitted.</p>\n";
    }
}

/** Mean-ms trend of @p stage across @p series records, as inline SVG. */
std::string
sparkline(const std::vector<const HistoryRecord *> &series,
          const std::string &stage)
{
    std::vector<double> points;
    for (const HistoryRecord *rec : series) {
        auto it = rec->stages.find(stage);
        if (it == rec->stages.end() || it->second.count == 0)
            continue;
        points.push_back(static_cast<double>(it->second.totalNs) /
                         static_cast<double>(it->second.count) / 1e6);
    }
    if (points.size() > 40)
        points.erase(points.begin(),
                     points.end() - 40); // newest 40 runs
    if (points.size() < 2)
        return "<span class=\"muted\">&ndash;</span>";
    const double lo = *std::min_element(points.begin(), points.end());
    const double hi = *std::max_element(points.begin(), points.end());
    const double range = std::max(hi - lo, 1e-9);
    const double w = 120.0, h = 26.0, pad = 3.0;
    std::ostringstream svg;
    svg << "<svg width=\"120\" height=\"26\" role=\"img\" "
           "aria-label=\"trend\"><title>"
        << points.size() << " runs: " << fmt(lo, 2) << "&ndash;"
        << fmt(hi, 2) << " ms</title><polyline fill=\"none\" stroke=\""
        << kAccentColor << "\" stroke-width=\"2\" points=\"";
    double last_x = 0.0, last_y = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        last_x = pad + static_cast<double>(i) /
                           static_cast<double>(points.size() - 1) *
                           (w - 2.0 * pad);
        last_y = h - pad - (points[i] - lo) / range * (h - 2.0 * pad);
        svg << fmt(last_x, 1) << "," << fmt(last_y, 1) << " ";
    }
    svg << "\"/><circle cx=\"" << fmt(last_x, 1) << "\" cy=\""
        << fmt(last_y, 1) << "\" r=\"2.5\" fill=\"" << kAccentColor
        << "\"/></svg>";
    return svg.str();
}

void
renderStageTable(std::ostream &out, const HistoryRecord &latest,
                 const std::vector<const HistoryRecord *> &series)
{
    out << "<h2>Stages (newest run, with trend across "
        << series.size() << " runs)</h2>\n";
    if (latest.stages.empty()) {
        out << "<p class=\"muted\">the newest record carries no stage "
               "rollups.</p>\n";
        return;
    }
    out << "<table><tr><th>stage</th><th class=\"num\">count</th>"
           "<th class=\"num\">total ms</th><th class=\"num\">mean ms"
           "</th><th class=\"num\">min ms</th><th class=\"num\">max ms"
           "</th><th>trend (mean ms)</th></tr>\n";
    for (const auto &[name, s] : latest.stages) {
        const double total_ms = static_cast<double>(s.totalNs) / 1e6;
        const double mean_ms =
            s.count > 0 ? total_ms / static_cast<double>(s.count) : 0.0;
        out << "<tr><td>" << htmlEscape(name) << "</td><td class=\"num\">"
            << s.count << "</td><td class=\"num\">" << fmt(total_ms)
            << "</td><td class=\"num\">" << fmt(mean_ms)
            << "</td><td class=\"num\">"
            << fmt(static_cast<double>(s.minNs) / 1e6)
            << "</td><td class=\"num\">"
            << fmt(static_cast<double>(s.maxNs) / 1e6) << "</td><td>"
            << sparkline(series, name) << "</td></tr>\n";
    }
    out << "</table>\n";
}

void
renderScoreMatrix(std::ostream &out,
                  const std::vector<HistoryRecord> &history)
{
    // Newest record carrying score.<benchmark>@<device> values.
    const HistoryRecord *scored = nullptr;
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
        for (const auto &[key, value] : it->values) {
            if (key.rfind("score.", 0) == 0 &&
                key.find('@') != std::string::npos) {
                scored = &*it;
                break;
            }
        }
        if (scored != nullptr)
            break;
    }
    out << "<h2>Scores by device (Fig. 2 view)</h2>\n";
    if (scored == nullptr) {
        out << "<p class=\"muted\">no per-device scores in the store "
               "yet &mdash; run <code>bench_fig2_scores --history "
               "runs.jsonl</code>.</p>\n";
        return;
    }
    std::set<std::string> benches, devices;
    std::map<std::pair<std::string, std::string>, double> cells;
    for (const auto &[key, value] : scored->values) {
        if (key.rfind("score.", 0) != 0)
            continue;
        const std::size_t at = key.find('@');
        if (at == std::string::npos)
            continue;
        std::string bench = key.substr(6, at - 6);
        std::string device = key.substr(at + 1);
        benches.insert(bench);
        devices.insert(device);
        cells[{bench, device}] = value;
    }
    out << "<p class=\"muted\">from run by " << htmlEscape(scored->tool)
        << " at rev " << htmlEscape(scored->gitRev)
        << "; blank = not scoreable (too large / skipped / failed)."
           "</p>\n<table><tr><th>benchmark</th>";
    for (const std::string &device : devices)
        out << "<th class=\"num\">" << htmlEscape(device) << "</th>";
    out << "</tr>\n";
    for (const std::string &bench : benches) {
        out << "<tr><td>" << htmlEscape(bench) << "</td>";
        for (const std::string &device : devices) {
            auto it = cells.find({bench, device});
            if (it == cells.end()) {
                out << "<td class=\"num muted\"></td>";
            } else {
                // Sequential encoding: one hue, deeper = higher score;
                // the number itself stays in ink.
                const double a =
                    std::clamp(it->second, 0.0, 1.0) * 0.30;
                out << "<td class=\"num\" style=\"background:rgba(42,"
                       "120,214,"
                    << fmt(a, 3) << ")\">" << fmt(it->second, 3)
                    << "</td>";
            }
        }
        out << "</tr>\n";
    }
    out << "</table>\n";
}

} // namespace

std::string
htmlEscape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&#39;"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
renderHtmlReport(const ReportInputs &inputs)
{
    std::ostringstream out;
    out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
           "<meta charset=\"utf-8\">\n<title>"
        << htmlEscape(inputs.title)
        << "</title>\n<style>\n"
           "body{font:14px/1.5 system-ui,sans-serif;color:#1f1f1f;"
           "margin:2em auto;max-width:980px;padding:0 1em}\n"
           "h1{font-size:1.5em}h2{font-size:1.15em;margin-top:1.6em}\n"
           "table{border-collapse:collapse;margin:0.5em 0}\n"
           "th,td{border:1px solid #e3e3e3;padding:3px 9px;"
           "text-align:left}\n"
           "th{background:#f6f6f6;font-weight:600}\n"
           ".num{text-align:right;font-variant-numeric:tabular-nums}\n"
           ".muted{color:#6b6b6b}\n"
           ".axis{font:11px system-ui,sans-serif;fill:#6b6b6b}\n"
           ".swatch{display:inline-block;width:10px;height:10px;"
           "border-radius:2px;margin-right:4px}\n"
           "code{background:#f2f2f2;padding:0 3px;border-radius:3px}\n"
           "</style>\n</head>\n<body>\n<h1>"
        << htmlEscape(inputs.title) << "</h1>\n";

    if (inputs.history.empty()) {
        out << "<p class=\"muted\">the run-history store is empty "
               "&mdash; append runs with <code>--history runs.jsonl"
               "</code> or <code>smq_sentinel ingest DIR</code>.</p>\n";
    } else {
        const HistoryRecord &latest = inputs.history.back();
        out << "<p>newest run: <b>" << htmlEscape(latest.tool)
            << "</b> at rev <code>" << htmlEscape(latest.gitRev)
            << "</code>, device table <code>"
            << htmlEscape(latest.deviceTableVersion)
            << "</code> &mdash; seed " << latest.seed << ", shots "
            << latest.shots << ", repetitions " << latest.repetitions
            << ", jobs " << latest.jobs << ", faults "
            << (latest.faultsEnabled ? "on" : "off")
            << "; transpile cache " << latest.cacheHits << " hits / "
            << latest.cacheMisses << " misses</p>\n";

        std::vector<std::string> trace_dirs = inputs.traceDirs;
        if (trace_dirs.empty() && !inputs.traceDir.empty())
            trace_dirs.push_back(inputs.traceDir);
        std::string trace_note = "no trace directory given";
        std::vector<TraceSpan> spans;
        if (!trace_dirs.empty())
            spans = loadMultiProcessSpans(trace_dirs, trace_note);
        renderWaterfall(out, std::move(spans), trace_note);

        std::vector<const HistoryRecord *> series;
        for (const HistoryRecord &rec : inputs.history) {
            if (rec.tool == latest.tool)
                series.push_back(&rec);
        }
        renderStageTable(out, latest, series);
        renderScoreMatrix(out, inputs.history);

        out << "<h2>Counters (newest run)</h2>\n";
        if (latest.counters.empty()) {
            out << "<p class=\"muted\">no counters recorded.</p>\n";
        } else {
            out << "<table><tr><th>counter</th><th class=\"num\">value"
                   "</th></tr>\n";
            for (const auto &[name, value] : latest.counters) {
                out << "<tr><td>" << htmlEscape(name)
                    << "</td><td class=\"num\">" << value
                    << "</td></tr>\n";
            }
            out << "</table>\n";
        }
    }

    std::set<std::string> schemas, revs;
    for (const HistoryRecord &rec : inputs.history) {
        schemas.insert(rec.schema);
        revs.insert(rec.gitRev);
    }
    out << "<hr><p class=\"muted\">store health: "
        << inputs.history.size() << " records";
    if (!schemas.empty()) {
        out << " (schemas:";
        for (const std::string &s : schemas)
            out << " " << htmlEscape(s);
        out << "; " << revs.size() << " git revision"
            << (revs.size() == 1 ? "" : "s") << ")";
    }
    if (inputs.skippedLines > 0)
        out << "; " << inputs.skippedLines
            << " unparseable line(s) skipped on load";
    out << ".</p>\n</body>\n</html>\n";
    return out.str();
}

std::string
renderMergedChromeTrace(const std::vector<std::string> &traceDirs,
                        std::string &note)
{
    std::vector<TraceSpan> spans =
        loadMultiProcessSpans(traceDirs, note);
    // Group by trace id first, so every request's spans — whichever
    // process emitted them — sit contiguously; within a trace the
    // order is the per-process waterfall order. Everything here is
    // derived from span data, never from load order or clocks, which
    // is what makes the merged file reproducible.
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  if (a.traceId != b.traceId)
                      return a.traceId < b.traceId;
                  if (a.process != b.process)
                      return a.process < b.process;
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.durUs > b.durUs;
              });
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const TraceSpan &s = spans[i];
        if (i)
            out << ",";
        out << "\n{\"name\":\"" << obs::escapeJson(s.name)
            << "\",\"cat\":\"smq\",\"ph\":\"X\",\"ts\":" << s.tsUs
            << ",\"dur\":" << s.durUs << ",\"pid\":" << (s.process + 1)
            << ",\"tid\":" << s.tid;
        if (!s.traceId.empty())
            out << ",\"args\":{\"trace.id\":\""
                << obs::escapeJson(s.traceId) << "\"}";
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

} // namespace smq::report
