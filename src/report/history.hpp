/**
 * @file
 * The run-history store: an append-only `runs.jsonl` of flattened run
 * records (schema `smq-run-history-v1`), the substrate every other
 * telemetry consumer (sentinel, HTML report, delta printers) reads.
 *
 * One line = one run. Records are flattened RunManifests — git rev,
 * config (seed/shots/reps/jobs/faults), cache hit rates, per-stage
 * wall-time rollups, counters — plus a free-form numeric `values` map
 * for facts manifests don't carry (scores per (benchmark, device),
 * wall-clock totals, overhead fractions).
 *
 * Durability contract:
 *  - appendHistory() is one fsynced O_APPEND write per record
 *    (obs::appendLineDurable), safe under `--jobs 8` concurrent
 *    appenders and leaving at most one truncated tail line after a
 *    crash;
 *  - loadHistory() tolerates exactly that: unparseable lines are
 *    counted and skipped, never fatal, and records from *newer*
 *    `smq-run-history-v*` schema versions are parsed best-effort so
 *    an old binary can still read a store a newer one appended to;
 *  - compactHistory() rewrites the surviving records tmp+fsync+rename,
 *    dropping corrupt lines (and optionally old records) atomically.
 */

#ifndef SMQ_REPORT_HISTORY_HPP
#define SMQ_REPORT_HISTORY_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/manifest.hpp"

namespace smq::report {

/** Schema identifier for the current record format. */
inline constexpr const char *kHistorySchema = "smq-run-history-v1";
/** Common prefix of every schema version this loader accepts. */
inline constexpr const char *kHistorySchemaPrefix = "smq-run-history-v";

/** One flattened run: a single line of the history store. */
struct HistoryRecord
{
    std::string schema = kHistorySchema;
    std::string tool;
    std::string gitRev = "unknown";
    std::string deviceTableVersion;

    // --- execution configuration (the record's matching key) ---------
    std::uint64_t seed = 0;
    std::uint64_t shots = 0;
    std::uint64_t repetitions = 0;
    std::uint64_t jobs = 0;
    bool faultsEnabled = false;
    std::uint64_t faultSeed = 0;

    // --- observed outcome --------------------------------------------
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::map<std::string, obs::StageRollup> stages;
    std::map<std::string, std::uint64_t> counters;
    /** Numeric facts: `score.<bench>@<device>`, `wall_ms`, ... */
    std::map<std::string, double> values;
    std::map<std::string, std::string> extra;

    /** Flatten a run manifest into a record (values left empty). */
    static HistoryRecord fromManifest(const obs::RunManifest &manifest);

    /** Serialize to one line of JSON (no embedded newlines). */
    std::string toJsonLine() const;

    /**
     * Parse one line. Accepts any `smq-run-history-v*` schema,
     * ignoring fields it does not know. @throws std::runtime_error on
     * malformed JSON or a foreign/missing schema.
     */
    static HistoryRecord fromJsonLine(const std::string &line);

    /**
     * Whether @p other ran the same workload configuration: same tool,
     * shots, repetitions and fault setting. `jobs` is deliberately
     * excluded so serial and parallel runs of one workload share a
     * trajectory.
     */
    bool sameConfig(const HistoryRecord &other) const;
};

/** Result of reading a history file. */
struct HistoryLoad
{
    std::vector<HistoryRecord> records; ///< file order (oldest first)
    std::size_t skippedLines = 0;       ///< unparseable lines dropped
    bool corruptTail = false; ///< the *last* line was unparseable
};

/**
 * Read every parseable record from @p path. A missing file yields an
 * empty load (first-run friendly); corrupt lines are skipped and
 * counted, with corruptTail flagging the crash-truncation signature.
 */
HistoryLoad loadHistory(const std::string &path);

/**
 * Durably append one record. @return false on I/O failure; when
 * @p error is non-null it receives the errno text (ENOSPC, EDQUOT and
 * friends surface as a readable cause instead of a bare false).
 */
bool appendHistory(const std::string &path, const HistoryRecord &record,
                   std::string *error = nullptr);

/**
 * Rewrite @p path atomically with only its parseable records, keeping
 * the newest @p keepLast of them (0 = keep all). @return false on I/O
 * failure; a failed compaction leaves the original file intact.
 */
bool compactHistory(const std::string &path, std::size_t keepLast = 0);

} // namespace smq::report

#endif // SMQ_REPORT_HISTORY_HPP
