/**
 * @file
 * The perf-regression sentinel: compares a fresh `BENCH_perf.json`
 * against the run-history store and decides, robustly, whether a
 * stage got slower.
 *
 * Baselines are median/MAD over the last `window` records whose
 * config matches the current run (HistoryRecord::sameConfig), so one
 * noisy historical run cannot poison the trajectory the way a mean
 * would. A stage regresses only when it clears *both* gates:
 *
 *     current > median * (1 + threshold)            (relative)
 *     current - median > madGate * max(MAD, floor)  (noise-scaled)
 *
 * Grace rules keep the gate honest on thin data: no baseline file or
 * no matching records (first run) passes, stages with fewer than
 * `minSamples` baseline points pass, and stages under `minMs` are
 * ignored entirely (timer noise). The obs-overhead fraction is checked
 * the same way, plus an absolute 2% budget inherited from PR 3.
 */

#ifndef SMQ_REPORT_SENTINEL_HPP
#define SMQ_REPORT_SENTINEL_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "report/history.hpp"

namespace smq::report {

/** Parsed view of a `BENCH_perf.json` produced by bench_perf. */
struct PerfSnapshot
{
    std::map<std::string, double> stageMs; ///< stage name -> wall ms
    double obsOverheadFrac = 0.0;
    /**
     * Tracing + context-propagation overhead fraction (spans on, a
     * trace context installed — the distributed-tracing hot path).
     * -1 when the perf file predates the measurement; the sentinel
     * then skips the gate instead of judging a phantom 0.
     */
    double obsPropagationFrac = -1.0;
    std::uint64_t gridJobs = 0;
    /** Workload config (absent in pre-PR-4 files: left 0). */
    std::uint64_t shots = 0;
    std::uint64_t repetitions = 0;
};

/**
 * Parse a BENCH_perf.json. @throws std::runtime_error on I/O failure
 * or malformed JSON.
 */
PerfSnapshot loadPerfJson(const std::string &path);

/** Flatten a perf snapshot into a history record for @p tool. */
HistoryRecord historyFromPerf(const PerfSnapshot &snapshot,
                              const std::string &tool = "bench_perf");

/** Sentinel decision knobs (see file comment for the gates). */
struct SentinelOptions
{
    double threshold = 0.35;  ///< relative slowdown gate
    double madGate = 4.0;     ///< MAD multiples above the median
    double madFloorMs = 0.5;  ///< MAD lower bound (quantization)
    std::size_t minSamples = 3;
    std::size_t window = 20;  ///< newest matching records considered
    double minMs = 1.0;       ///< ignore faster stages (timer noise)
    std::string tool = "bench_perf"; ///< trajectory to compare against
};

/** Verdict for one stage (or the obs-overhead pseudo-stage). */
struct StageCheck
{
    std::string stage;
    double currentMs = 0.0;
    double medianMs = 0.0;
    double madMs = 0.0;
    double ratio = 0.0; ///< current / median (0 when no baseline)
    std::size_t samples = 0;
    bool regressed = false;
    bool graced = false; ///< insufficient baseline for a verdict
};

/** Full sentinel verdict over one perf snapshot. */
struct CheckReport
{
    std::vector<StageCheck> stages;
    std::size_t baselineRuns = 0; ///< matching records consulted
    std::string note;             ///< grace / context commentary

    bool regression() const;

    /** Human-readable verdict table (regressed stages flagged). */
    std::string render() const;
};

/**
 * Compare @p current against @p history under @p options. Pure: reads
 * no files, so tests can synthesize both sides.
 */
CheckReport checkPerf(const PerfSnapshot &current,
                      const std::vector<HistoryRecord> &history,
                      const SentinelOptions &options = {});

} // namespace smq::report

#endif // SMQ_REPORT_SENTINEL_HPP
