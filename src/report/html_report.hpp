/**
 * @file
 * Self-contained HTML run reports: one dependency-free static page
 * rendered from the run-history store and (optionally) a trace
 * directory. No external JS/CSS/fonts — everything including the
 * span waterfall and trend sparklines is inline SVG, so the file can
 * be archived next to the numbers it describes and opened offline
 * years later.
 *
 * Sections, in order:
 *  1. run header — config/provenance of the newest record,
 *  2. span waterfall — per-thread lanes from `<traceDir>/trace.json`,
 *  3. stage table — per-stage rollups of the newest record, each row
 *     carrying a mean-duration trend sparkline across the history,
 *  4. score-vs-device matrix (Fig. 2 style) from `score.<b>@<d>`
 *     values,
 *  5. counter table and store health footer (records, skipped lines,
 *     schema versions).
 */

#ifndef SMQ_REPORT_HTML_REPORT_HPP
#define SMQ_REPORT_HTML_REPORT_HPP

#include <string>
#include <vector>

#include "report/history.hpp"

namespace smq::report {

/** Inputs for renderHtmlReport(). */
struct ReportInputs
{
    /** History records, oldest first (as loadHistory returns them). */
    std::vector<HistoryRecord> history;
    /** Directory holding trace.json, or empty for no waterfall. */
    std::string traceDir;
    /**
     * Multi-process stitching: one trace.json directory per process
     * (e.g. a submit client plus a daemon). When non-empty this list
     * supersedes traceDir; each directory becomes one process in the
     * waterfall, its spans time-normalized to its own first span so
     * per-process clock epochs (steady-clock zero differs between
     * processes) cannot make the merged view nondeterministic.
     */
    std::vector<std::string> traceDirs;
    std::string title = "SupermarQ run report";
    /** Store health, forwarded into the footer. */
    std::size_t skippedLines = 0;
};

/** Escape @p raw for HTML text/attribute contexts. */
std::string htmlEscape(std::string_view raw);

/**
 * Render the full page. Never throws on missing/corrupt trace input —
 * the waterfall section degrades to an explanatory note, because a
 * report generator must not fail the pipeline it reports on.
 */
std::string renderHtmlReport(const ReportInputs &inputs);

/**
 * Stitch the trace.json files under @p traceDirs into one Chrome
 * trace-event document (`{"traceEvents":[...]}`): directory i becomes
 * pid i+1, every directory's timestamps are normalized to its own
 * first span, and events are ordered by (trace id, pid, ts, tid,
 * -dur) so spans sharing a trace id — one submit's client, queue-wait,
 * job and kernel spans across processes — form one contiguous tree.
 * The output is a pure function of the input span data (never of
 * process start times), so re-running identical work reproduces it
 * byte-for-byte. Unreadable directories are skipped with a line in
 * @p note; never throws.
 */
std::string renderMergedChromeTrace(
    const std::vector<std::string> &traceDirs, std::string &note);

} // namespace smq::report

#endif // SMQ_REPORT_HTML_REPORT_HPP
