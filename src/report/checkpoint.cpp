#include "report/checkpoint.hpp"

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/fsio.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::report {

namespace {

/** Common prefix of every journal schema version this loader reads. */
constexpr const char *kSchemaPrefix = "smq-checkpoint-v";

void
writeNumber(std::ostream &out, double value)
{
    std::ostringstream text;
    text.precision(17);
    text << value;
    // Bare "inf"/"nan" would be invalid JSON; same guard as history.
    std::string s = text.str();
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos)
        s = "0";
    out << s;
}

void
writeStringArray(std::ostream &out, const std::vector<std::string> &v)
{
    out << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out << (i ? "," : "") << "\"" << obs::escapeJson(v[i]) << "\"";
    out << "]";
}

void
writeDoubleArray(std::ostream &out, const std::vector<double> &v)
{
    out << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out << ",";
        writeNumber(out, v[i]);
    }
    out << "]";
}

void
writeU64Array(std::ostream &out, const std::vector<std::uint64_t> &v)
{
    out << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out << (i ? "," : "") << v[i];
    out << "]";
}

std::vector<std::string>
readStringArray(const obs::JsonValue &value)
{
    std::vector<std::string> out;
    for (const obs::JsonValue &item : value.array)
        out.push_back(item.asString());
    return out;
}

std::string
journalPath(const std::string &dir)
{
    return dir + "/" + kCheckpointFile;
}

/** Hook thresholds from the environment; negative = disabled. */
long
envCellCount(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return -1;
    char *end = nullptr;
    long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 0)
        return -1;
    return value;
}

CheckpointHeader
headerFromJson(const obs::JsonValue &root)
{
    CheckpointHeader header;
    if (const obs::JsonValue *v = root.find("tool"))
        header.tool = v->asString();
    header.config = root.at("config").asString();
    header.shardIndex =
        static_cast<std::size_t>(root.at("shard_index").asU64());
    header.shardCount =
        static_cast<std::size_t>(root.at("shard_count").asU64());
    header.devices = readStringArray(root.at("devices"));
    header.benchmarks = readStringArray(root.at("benchmarks"));
    return header;
}

CheckpointRow
rowFromJson(const obs::JsonValue &root)
{
    CheckpointRow row;
    row.benchmark = root.at("benchmark").asString();
    row.isErrorCorrection = root.at("error_correction").asBool();
    for (const obs::JsonValue &v : root.at("features").array)
        row.features.push_back(v.asDouble());
    for (const obs::JsonValue &v : root.at("stats").array)
        row.stats.push_back(v.asU64());
    return row;
}

CheckpointCell
cellFromJson(const obs::JsonValue &root)
{
    CheckpointCell cell;
    cell.benchmark = root.at("benchmark").asString();
    cell.device = root.at("device").asString();
    cell.final = root.at("final").asBool();
    cell.status = static_cast<int>(root.at("status").asU64());
    cell.cause = static_cast<int>(root.at("cause").asU64());
    cell.plannedRepetitions = root.at("planned").asU64();
    cell.attempts = root.at("attempts").asU64();
    cell.errorBarScale = root.at("error_bar").asDouble();
    cell.swapsInserted = root.at("swaps").asU64();
    cell.physicalTwoQubitGates = root.at("phys_2q").asU64();
    // Optional: journals predating the backend planner carry no plan.
    if (const obs::JsonValue *v = root.find("plan"))
        cell.plan = v->asString();
    for (const obs::JsonValue &v : root.at("scores").array)
        cell.scores.push_back(v.asDouble());
    return cell;
}

} // namespace

std::string
CheckpointHeader::toJsonLine() const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kCheckpointSchema << "\""
        << ",\"kind\":\"header\""
        << ",\"tool\":\"" << obs::escapeJson(tool) << "\""
        << ",\"config\":\"" << obs::escapeJson(config) << "\""
        << ",\"shard_index\":" << shardIndex
        << ",\"shard_count\":" << shardCount << ",\"devices\":";
    writeStringArray(out, devices);
    out << ",\"benchmarks\":";
    writeStringArray(out, benchmarks);
    out << "}";
    return out.str();
}

bool
CheckpointHeader::sameWorkload(const CheckpointHeader &other) const
{
    return config == other.config && shardCount == other.shardCount &&
           devices == other.devices && benchmarks == other.benchmarks;
}

std::string
CheckpointRow::toJsonLine() const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kCheckpointSchema << "\""
        << ",\"kind\":\"row\""
        << ",\"benchmark\":\"" << obs::escapeJson(benchmark) << "\""
        << ",\"error_correction\":" << (isErrorCorrection ? "true" : "false")
        << ",\"features\":";
    writeDoubleArray(out, features);
    out << ",\"stats\":";
    writeU64Array(out, stats);
    out << "}";
    return out.str();
}

std::string
CheckpointCell::toJsonLine() const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << kCheckpointSchema << "\""
        << ",\"kind\":\"cell\""
        << ",\"benchmark\":\"" << obs::escapeJson(benchmark) << "\""
        << ",\"device\":\"" << obs::escapeJson(device) << "\""
        << ",\"final\":" << (final ? "true" : "false")
        << ",\"status\":" << status << ",\"cause\":" << cause
        << ",\"planned\":" << plannedRepetitions
        << ",\"attempts\":" << attempts << ",\"error_bar\":";
    writeNumber(out, errorBarScale);
    out << ",\"swaps\":" << swapsInserted
        << ",\"phys_2q\":" << physicalTwoQubitGates
        << ",\"plan\":\"" << obs::escapeJson(plan) << "\""
        << ",\"scores\":";
    writeDoubleArray(out, scores);
    out << "}";
    return out.str();
}

CheckpointLoad
loadCheckpoint(const std::string &dir)
{
    CheckpointLoad load;
    std::ifstream in(journalPath(dir));
    if (!in)
        return load; // fresh start: nothing to resume
    load.exists = true;
    std::string line;
    bool last_was_corrupt = false;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        try {
            obs::JsonValue root = obs::parseJson(line);
            const std::string &schema = root.at("schema").asString();
            if (schema.rfind(kSchemaPrefix, 0) != 0)
                throw std::runtime_error("foreign schema");
            const std::string &kind = root.at("kind").asString();
            if (kind == "header") {
                if (!load.headerOk) {
                    load.header = headerFromJson(root);
                    load.headerOk = true;
                }
            } else if (kind == "row") {
                load.rows.push_back(rowFromJson(root));
            } else if (kind == "cell") {
                load.cells.push_back(cellFromJson(root));
            }
            // Unknown kinds from newer schema versions: ignored, so an
            // old binary can still merge a newer shard's journal.
            last_was_corrupt = false;
        } catch (const std::exception &) {
            ++load.skippedLines;
            last_was_corrupt = true;
        }
    }
    load.corruptTail = last_was_corrupt;
    return load;
}

CheckpointWriter::CheckpointWriter(const std::string &dir)
    : path_(journalPath(dir)),
      crashAfterCells_(envCellCount("SMQ_CRASH_AFTER_CELLS")),
      stopAfterCells_(envCellCount("SMQ_STOP_AFTER_CELLS"))
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        error_ = "mkdir: " + ec.message();
}

CheckpointWriter::CheckpointWriter(CheckpointWriter &&other) noexcept
{
    *this = std::move(other);
}

CheckpointWriter &
CheckpointWriter::operator=(CheckpointWriter &&other) noexcept
{
    if (this != &other) {
        path_ = std::move(other.path_);
        error_ = std::move(other.error_);
        cells_.store(other.cells_.load());
        crashAfterCells_ = other.crashAfterCells_;
        stopAfterCells_ = other.stopAfterCells_;
        other.path_.clear();
    }
    return *this;
}

std::string
CheckpointWriter::error() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
}

std::size_t
CheckpointWriter::cellsJournaled() const
{
    return cells_.load();
}

bool
CheckpointWriter::writeHeader(const CheckpointHeader &header)
{
    if (!active())
        return true;
    std::string err;
    if (!obs::atomicWriteFile(path_, header.toJsonLine() + "\n", &err)) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error_.empty())
            error_ = err;
        obs::counter(obs::names::kCheckpointAppendFailures).add();
        return false;
    }
    return true;
}

bool
CheckpointWriter::append(const std::string &line)
{
    if (!active())
        return true;
    std::string err;
    if (!obs::appendLineDurable(path_, line, &err)) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error_.empty())
            error_ = err;
        obs::counter(obs::names::kCheckpointAppendFailures).add();
        return false;
    }
    return true;
}

bool
CheckpointWriter::appendRow(const CheckpointRow &row)
{
    return append(row.toJsonLine());
}

bool
CheckpointWriter::appendCell(const CheckpointCell &cell)
{
    if (!active())
        return true;
    const bool ok = append(cell.toJsonLine());
    if (!ok)
        return false;
    const std::size_t count = ++cells_;
    obs::counter(obs::names::kCheckpointCellsJournaled).add();
    // Deterministic fault hooks: the cell is durably journaled, then
    // the process dies (SIGKILL: unclean, exactly what a crash leaves
    // behind) or asks itself to stop (SIGTERM: drives the real
    // cooperative-shutdown handler at a reproducible point).
    if (crashAfterCells_ >= 0 &&
        count >= static_cast<std::size_t>(crashAfterCells_))
        std::raise(SIGKILL);
    if (stopAfterCells_ >= 0 &&
        count == static_cast<std::size_t>(stopAfterCells_))
        std::raise(SIGTERM);
    return true;
}

MergedGrid
mergeCheckpoints(const std::vector<std::string> &dirs)
{
    if (dirs.empty())
        throw std::runtime_error("merge: no checkpoint directories");

    MergedGrid merged;
    struct Slot
    {
        CheckpointCell cell;
        std::size_t journal = 0;
    };
    std::map<std::string, Slot> slots;  // key -> best record so far
    std::map<std::string, CheckpointRow> rows;
    std::set<std::size_t> shard_indices;
    std::set<std::string> overlap_seen;

    for (std::size_t j = 0; j < dirs.size(); ++j) {
        CheckpointLoad load = loadCheckpoint(dirs[j]);
        if (!load.exists)
            throw std::runtime_error("merge: no journal in " + dirs[j]);
        if (!load.headerOk)
            throw std::runtime_error("merge: no readable header in " +
                                     dirs[j]);
        if (j == 0) {
            merged.header = load.header;
        } else if (!merged.header.sameWorkload(load.header)) {
            throw std::runtime_error(
                "merge: " + dirs[j] +
                " journals a different workload than " + dirs[0]);
        }
        merged.shardsSeen.push_back(
            std::to_string(load.header.shardIndex) + "/" +
            std::to_string(load.header.shardCount));
        shard_indices.insert(load.header.shardIndex);

        for (CheckpointRow &row : load.rows) {
            auto it = rows.find(row.benchmark);
            if (it == rows.end()) {
                rows.emplace(row.benchmark, std::move(row));
            } else if (it->second.toJsonLine() != row.toJsonLine()) {
                throw std::runtime_error(
                    "merge: conflicting row metadata for " +
                    row.benchmark);
            }
        }

        for (CheckpointCell &cell : load.cells) {
            const std::string key = cell.key();
            auto it = slots.find(key);
            if (it == slots.end()) {
                slots.emplace(key, Slot{std::move(cell), j});
                continue;
            }
            Slot &slot = it->second;
            if (!cell.final) {
                // Salvage never displaces anything; it only fills gaps.
                ++merged.salvagedDropped;
                continue;
            }
            if (!slot.cell.final) {
                ++merged.salvagedDropped;
                slot = Slot{std::move(cell), j};
                continue;
            }
            if (slot.journal == j) {
                // Same journal, e.g. a resumed run re-finishing a
                // cell: later record wins, like a log replay.
                slot.cell = std::move(cell);
                continue;
            }
            // Two journals both claim this cell. Identical content is
            // an overlap (a shard run twice); divergence is data
            // corruption and must not be papered over.
            if (slot.cell.toJsonLine() != cell.toJsonLine())
                throw std::runtime_error(
                    "merge: conflicting results for " + key + " (" +
                    dirs[slot.journal] + " vs " + dirs[j] + ")");
            if (overlap_seen.insert(key).second)
                merged.overlapCells.push_back(key);
        }
    }

    for (std::size_t i = 0; i < merged.header.shardCount; ++i) {
        if (shard_indices.find(i) == shard_indices.end())
            merged.missingShards.push_back(i);
    }

    const std::size_t n_devices = merged.header.devices.size();
    merged.rows.reserve(merged.header.benchmarks.size());
    merged.cells.resize(merged.header.benchmarks.size());
    for (std::size_t r = 0; r < merged.header.benchmarks.size(); ++r) {
        const std::string &bench = merged.header.benchmarks[r];
        auto row_it = rows.find(bench);
        if (row_it != rows.end()) {
            merged.rows.push_back(row_it->second);
        } else {
            CheckpointRow placeholder;
            placeholder.benchmark = bench;
            merged.rows.push_back(std::move(placeholder));
        }
        merged.cells[r].resize(n_devices);
        for (std::size_t d = 0; d < n_devices; ++d) {
            CheckpointCell &cell = merged.cells[r][d];
            cell.benchmark = bench;
            cell.device = merged.header.devices[d];
            cell.final = false;
            auto it = slots.find(cell.key());
            if (it != slots.end() && it->second.cell.final)
                cell = it->second.cell;
            else
                merged.missingCells.push_back(cell.key());
        }
    }
    return merged;
}

std::string
renderMergedGrid(const MergedGrid &grid)
{
    std::ostringstream out;
    out.precision(17);
    out << kMergedGridVersion << "\n"
        << grid.header.devices.size() << "\n";
    for (const std::string &name : grid.header.devices)
        out << name << "\n";
    out << grid.rows.size() << "\n";
    for (std::size_t r = 0; r < grid.rows.size(); ++r) {
        const CheckpointRow &row = grid.rows[r];
        out << row.benchmark << "\n"
            << (row.isErrorCorrection ? 1 : 0) << "\n";
        for (double v : row.features)
            out << v << " ";
        out << "\n";
        for (std::size_t i = 0; i < row.stats.size(); ++i)
            out << (i ? " " : "") << row.stats[i];
        out << "\n";
        for (const CheckpointCell &cell : grid.cells[r]) {
            if (!cell.final) {
                out << "missing\n";
                continue;
            }
            out << cell.status << " " << cell.cause << " "
                << cell.plannedRepetitions << " " << cell.attempts
                << " " << cell.errorBarScale << " "
                << cell.swapsInserted << " "
                << cell.physicalTwoQubitGates << " "
                << cell.scores.size();
            for (double s : cell.scores)
                out << " " << s;
            out << "\n";
        }
    }
    return out.str();
}

} // namespace smq::report
