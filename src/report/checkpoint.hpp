/**
 * @file
 * The per-cell checkpoint journal of crash-tolerant grid execution
 * (schema `smq-checkpoint-v1`): one JSONL record per completed grid
 * cell, appended durably as the sweep progresses, so a killed run —
 * SIGKILL, OOM, power loss — resumes from the last completed cell
 * instead of from zero, and a sweep split over `--shard i/N`
 * processes merges back into one grid afterwards.
 *
 * File layout: `DIR/cells.jsonl`, written with the same durability
 * discipline as the run-history store (obs::appendLineDurable — one
 * fsynced O_APPEND write per record, at most one truncated tail line
 * after a crash, which the loader tolerates). Record kinds:
 *
 *  - `header`: the workload key (config text, shard, device and
 *    benchmark lists). A journal is only resumable/mergeable when the
 *    header matches; resuming under a different config fails loudly
 *    instead of silently mixing results.
 *  - `row`: per-benchmark metadata (features, circuit stats). Every
 *    shard journals every row — rows are cheap, deterministic and
 *    label-derived, so identical across shards — which makes the
 *    merge a pure data fold needing no re-simulation.
 *  - `cell`: one (benchmark, device) outcome. `final` is true unless
 *    the cell was cut short by cooperative shutdown; non-final cells
 *    keep their salvaged scores for inspection but are re-run on
 *    resume, preserving byte-identity with an uninterrupted sweep.
 *
 * Layering: this header deliberately knows nothing of smq::core.
 * Statuses and causes travel as the same integers the fig2 cache
 * format uses; the bench layer converts to/from core::BenchmarkRun.
 */

#ifndef SMQ_REPORT_CHECKPOINT_HPP
#define SMQ_REPORT_CHECKPOINT_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace smq::report {

/** Schema identifier of the journal records. */
inline constexpr const char *kCheckpointSchema = "smq-checkpoint-v1";
/** Journal file name inside a checkpoint directory. */
inline constexpr const char *kCheckpointFile = "cells.jsonl";
/** Version line of the merged-grid canonical text. */
inline constexpr const char *kMergedGridVersion = "smq-merged-grid-v1";

/**
 * Process exit codes of the resilient grid drivers, mirroring
 * sysexits.h so wrapping scripts can tell "rerun with --resume"
 * apart from "fix the disk" apart from "fix the command line".
 */
inline constexpr int kExitInterrupted = 75;  ///< EX_TEMPFAIL: resume me
inline constexpr int kExitStorageError = 74; ///< EX_IOERR: journal lost
inline constexpr int kExitConfigMismatch = 2; ///< usage / foreign journal

/** The workload key a journal belongs to. */
struct CheckpointHeader
{
    std::string tool;        ///< writing binary (informational)
    std::string config;      ///< canonical execution-config text
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    std::vector<std::string> devices;    ///< grid column order
    std::vector<std::string> benchmarks; ///< grid row order

    std::string toJsonLine() const;

    /**
     * Same workload: config text, device and benchmark lists and
     * shard count all equal. Shard *index* is deliberately excluded —
     * merge accepts sibling shards; resume checks the index itself.
     */
    bool sameWorkload(const CheckpointHeader &other) const;
};

/** Per-benchmark metadata: one grid row, device-independent. */
struct CheckpointRow
{
    std::string benchmark;
    bool isErrorCorrection = false;
    std::vector<double> features;      ///< the 6 SupermarQ features
    std::vector<std::uint64_t> stats;  ///< qubits depth gates 2q meas resets

    std::string toJsonLine() const;
};

/** One completed (benchmark, device) outcome. */
struct CheckpointCell
{
    std::string benchmark;
    std::string device;
    /**
     * False when cooperative shutdown cut the cell short: the
     * salvaged scores are journaled for inspection, but resume re-runs
     * the cell so the final grid is byte-identical to an
     * uninterrupted sweep.
     */
    bool final = true;
    int status = 0; ///< core::RunStatus as int (cache-format encoding)
    int cause = 0;  ///< core::FailureCause as int
    std::uint64_t plannedRepetitions = 0;
    std::uint64_t attempts = 0;
    double errorBarScale = 1.0;
    std::uint64_t swapsInserted = 0;
    std::uint64_t physicalTwoQubitGates = 0;
    /**
     * Backend plan record ('+'-joined tokens, see BenchmarkRun::plan).
     * Optional on load: journals written before the planner existed
     * parse with an empty plan.
     */
    std::string plan;
    std::vector<double> scores;

    std::string toJsonLine() const;

    /** "benchmark@device", the cell's identity in maps and messages. */
    std::string key() const { return benchmark + "@" + device; }
};

/** Everything read back from one journal. */
struct CheckpointLoad
{
    bool exists = false;   ///< the journal file was present
    bool headerOk = false; ///< a parseable header record was found
    CheckpointHeader header;
    std::vector<CheckpointRow> rows;   ///< file order, duplicates kept
    std::vector<CheckpointCell> cells; ///< file order, duplicates kept
    std::size_t skippedLines = 0;      ///< unparseable lines dropped
    bool corruptTail = false; ///< last line unparseable (crash signature)
};

/**
 * Read `dir/cells.jsonl`. Missing file yields exists=false (fresh
 * start); corrupt lines — including the truncated tail a SIGKILL
 * leaves — are counted and skipped, never fatal. Records of foreign
 * `smq-checkpoint-v*` versions are skipped the same way.
 */
CheckpointLoad loadCheckpoint(const std::string &dir);

/**
 * Appends journal records durably (one fsynced O_APPEND write each,
 * safe under `--jobs N` concurrent cell workers). A default-built
 * writer is inactive: every append is a successful no-op, so call
 * sites need no branching.
 *
 * Write failures (ENOSPC, EDQUOT, ...) are sticky: the first errno
 * text is kept in error(), the `checkpoint.append.failures` counter
 * is bumped, and the driver turns a non-empty error into the
 * kExitStorageError outcome.
 *
 * Deterministic fault hooks for the kill/resume tests:
 *  - SMQ_CRASH_AFTER_CELLS=n: raise SIGKILL after the n-th journaled
 *    cell — a real unclean death at an exact journal boundary.
 *  - SMQ_STOP_AFTER_CELLS=n: raise SIGTERM instead, driving the
 *    installed cooperative-shutdown path at a deterministic point.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;
    /** Journal into @p dir (created if needed). */
    explicit CheckpointWriter(const std::string &dir);
    /** Movable so a driver can build it conditionally; not shared. */
    CheckpointWriter(CheckpointWriter &&other) noexcept;
    CheckpointWriter &operator=(CheckpointWriter &&other) noexcept;

    bool active() const { return !path_.empty(); }

    /** Start a fresh journal: truncate and write the header record. */
    bool writeHeader(const CheckpointHeader &header);

    bool appendRow(const CheckpointRow &row);
    /** Thread-safe: cell workers of a `--jobs N` sweep call this. */
    bool appendCell(const CheckpointCell &cell);

    /** First append/truncate failure ("write: No space left..."). */
    std::string error() const;

    /** Cells journaled by this writer (drives the fault hooks). */
    std::size_t cellsJournaled() const;

  private:
    bool append(const std::string &line);

    std::string path_;
    mutable std::mutex mutex_; ///< guards error_
    std::string error_;
    std::atomic<std::size_t> cells_{0};
    long crashAfterCells_ = -1;
    long stopAfterCells_ = -1;
};

/** A grid reassembled from shard journals. */
struct MergedGrid
{
    CheckpointHeader header; ///< shard index/count of the first journal
    std::vector<CheckpointRow> rows; ///< header benchmark order
    /** cells[row][device]; a missing cell keeps final == false. */
    std::vector<std::vector<CheckpointCell>> cells;
    std::vector<std::string> shardsSeen;  ///< "i/N" per input journal
    std::vector<std::size_t> missingShards; ///< indices with no journal
    std::vector<std::string> missingCells;  ///< "bench@device" gaps
    std::vector<std::string> overlapCells;  ///< final in >1 journal
    std::size_t salvagedDropped = 0; ///< non-final records superseded

    /** Every grid cell has a final outcome from exactly one pass. */
    bool complete() const
    {
        return missingCells.empty() && missingShards.empty();
    }
};

/**
 * Fold shard journals into one grid. All journals must share a
 * workload (sameWorkload) and agree cell-for-cell: a (benchmark,
 * device) pair final in two journals with *identical* content is
 * reported as an overlap (harmless — e.g. a shard run twice);
 * *conflicting* content throws, as does a workload mismatch or a
 * journal with no readable header. Missing shards and cells are
 * reported, not fatal: an incomplete merge still shows what exists.
 *
 * @throws std::runtime_error on mismatch/conflict/empty input.
 */
MergedGrid mergeCheckpoints(const std::vector<std::string> &dirs);

/**
 * Canonical text of a merged grid (`smq-merged-grid-v1`): the version
 * line, then exactly the fig2 cache body — so the shard-union
 * property "merge of N shard journals == merge of the serial
 * journal" is a byte comparison. Missing cells render as the
 * literal line "missing".
 */
std::string renderMergedGrid(const MergedGrid &grid);

} // namespace smq::report

#endif // SMQ_REPORT_CHECKPOINT_HPP
