#include "report/sentinel_cli.hpp"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <optional>
#include <ostream>

#include "obs/fsio.hpp"
#include "obs/manifest.hpp"
#include "report/checkpoint.hpp"
#include "report/history.hpp"
#include "report/html_report.hpp"
#include "report/sentinel.hpp"

namespace smq::report {

namespace {

constexpr const char *kUsage =
    "usage: smq_sentinel <subcommand> [options]\n"
    "\n"
    "  check PERF_JSON --baseline FILE [--threshold F]\n"
    "        [--min-samples N] [--window N] [--tool NAME]\n"
    "      exit 1 when a stage regressed vs the store's trajectory\n"
    "  baseline PERF_JSON [--history FILE]\n"
    "      append the perf snapshot to the store (default runs.jsonl)\n"
    "  ingest DIR [--history FILE]\n"
    "      append every *_manifest.json under DIR to the store\n"
    "  report [--history FILE] [--trace DIR]... [--out FILE]\n"
    "        [--title T] [--merged-trace FILE]\n"
    "      write a self-contained HTML run report (default report.html);\n"
    "      repeat --trace to stitch multi-process traces into one\n"
    "      waterfall, --merged-trace also writes the stitched\n"
    "      Chrome-trace JSON\n"
    "  compact [--history FILE] [--keep N]\n"
    "      atomically rewrite the store, dropping corrupt lines\n"
    "  merge DIR... [--out FILE] [--history FILE]\n"
    "      fold shard checkpoint journals into one merged grid;\n"
    "      exit 1 when shards or cells are missing\n";

/** Tiny flag cursor over the args vector. */
class Args
{
  public:
    explicit Args(std::vector<std::string> args)
        : args_(std::move(args))
    {
    }

    /** Consume the next positional argument, if any. */
    std::optional<std::string> positional()
    {
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (args_[i].rfind("--", 0) != 0) {
                std::string value = args_[i];
                args_.erase(args_.begin() +
                            static_cast<std::ptrdiff_t>(i));
                return value;
            }
            ++i; // skip the flag's value
        }
        return std::nullopt;
    }

    /** Consume `--name VALUE`, if present. */
    std::optional<std::string> flag(const std::string &name)
    {
        for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
            if (args_[i] == name) {
                std::string value = args_[i + 1];
                args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                            args_.begin() +
                                static_cast<std::ptrdiff_t>(i + 2));
                return value;
            }
        }
        return std::nullopt;
    }

    /** Whatever was not consumed (unknown flags → usage error). */
    const std::vector<std::string> &rest() const { return args_; }

  private:
    std::vector<std::string> args_;
};

int
usageError(std::ostream &err, const std::string &message)
{
    err << "smq_sentinel: " << message << "\n" << kUsage;
    return kSentinelUsage;
}

/**
 * Full-token numeric parses. std::stod/std::stoul alone are not
 * enough: they partial-parse ("0.5abc" -> 0.5) and stoul silently
 * wraps negatives ("-1" -> huge), so malformed flag values would be
 * accepted instead of producing the documented usage exit code.
 */
std::optional<double>
parseDoubleFlag(const std::string &text)
{
    try {
        std::size_t consumed = 0;
        double value = std::stod(text, &consumed);
        if (consumed != text.size())
            return std::nullopt;
        return value;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

std::optional<std::size_t>
parseSizeFlag(const std::string &text)
{
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    try {
        std::size_t consumed = 0;
        unsigned long value = std::stoul(text, &consumed);
        if (consumed != text.size())
            return std::nullopt;
        return static_cast<std::size_t>(value);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

int
runCheck(Args &args, std::ostream &out, std::ostream &err)
{
    auto perf_path = args.positional();
    auto baseline = args.flag("--baseline");
    if (!perf_path || !baseline)
        return usageError(err, "check needs PERF_JSON and --baseline");

    SentinelOptions options;
    if (auto v = args.flag("--threshold")) {
        auto parsed = parseDoubleFlag(*v);
        if (!parsed)
            return usageError(err, "check: bad --threshold '" + *v + "'");
        options.threshold = *parsed;
    }
    if (auto v = args.flag("--min-samples")) {
        auto parsed = parseSizeFlag(*v);
        if (!parsed)
            return usageError(err, "check: bad --min-samples '" + *v + "'");
        options.minSamples = *parsed;
    }
    if (auto v = args.flag("--window")) {
        auto parsed = parseSizeFlag(*v);
        if (!parsed)
            return usageError(err, "check: bad --window '" + *v + "'");
        options.window = *parsed;
    }
    if (auto v = args.flag("--tool"))
        options.tool = *v;
    if (!args.rest().empty())
        return usageError(err, "check: unknown argument " +
                                   args.rest().front());

    PerfSnapshot current;
    try {
        current = loadPerfJson(*perf_path);
    } catch (const std::exception &e) {
        err << "smq_sentinel: " << e.what() << "\n";
        return kSentinelUsage;
    }

    HistoryLoad load = loadHistory(*baseline);
    CheckReport report = checkPerf(current, load.records, options);
    out << report.render();
    if (load.skippedLines > 0) {
        out << "(store: " << load.skippedLines
            << " unparseable line(s) skipped"
            << (load.corruptTail ? ", corrupt tail - consider "
                                   "`smq_sentinel compact`"
                                 : "")
            << ")\n";
    }
    if (report.regression()) {
        out << "verdict: REGRESSION\n";
        return kSentinelRegression;
    }
    out << "verdict: ok (" << report.baselineRuns
        << " baseline run(s))\n";
    return kSentinelOk;
}

int
runBaseline(Args &args, std::ostream &out, std::ostream &err)
{
    auto perf_path = args.positional();
    if (!perf_path)
        return usageError(err, "baseline needs PERF_JSON");
    const std::string history =
        args.flag("--history").value_or("runs.jsonl");
    if (!args.rest().empty())
        return usageError(err, "baseline: unknown argument " +
                                   args.rest().front());

    HistoryRecord record;
    try {
        record = historyFromPerf(loadPerfJson(*perf_path));
    } catch (const std::exception &e) {
        err << "smq_sentinel: " << e.what() << "\n";
        return kSentinelUsage;
    }
    if (!appendHistory(history, record)) {
        err << "smq_sentinel: cannot append to " << history << "\n";
        return kSentinelUsage;
    }
    out << "promoted " << *perf_path << " (" << record.stages.size()
        << " stages) into " << history << "\n";
    return kSentinelOk;
}

int
runIngest(Args &args, std::ostream &out, std::ostream &err)
{
    auto dir = args.positional();
    if (!dir)
        return usageError(err, "ingest needs DIR");
    const std::string history =
        args.flag("--history").value_or("runs.jsonl");
    if (!args.rest().empty())
        return usageError(err, "ingest: unknown argument " +
                                   args.rest().front());

    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(*dir, ec)) {
        err << "smq_sentinel: not a directory: " << *dir << "\n";
        return kSentinelUsage;
    }
    std::vector<std::string> manifests;
    for (fs::recursive_directory_iterator it(*dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        const fs::path &p = it->path();
        const std::string name = p.filename().string();
        if (it->is_regular_file(ec) && name.size() > 14 &&
            name.rfind("_manifest.json") == name.size() - 14) {
            manifests.push_back(p.string());
        }
    }
    std::sort(manifests.begin(), manifests.end());

    std::size_t appended = 0, failed = 0;
    for (const std::string &path : manifests) {
        try {
            obs::RunManifest manifest = obs::RunManifest::readFile(path);
            if (!appendHistory(history,
                               HistoryRecord::fromManifest(manifest))) {
                err << "smq_sentinel: cannot append to " << history
                    << "\n";
                return kSentinelUsage;
            }
            ++appended;
        } catch (const std::exception &e) {
            err << "smq_sentinel: skipping " << path << ": " << e.what()
                << "\n";
            ++failed;
        }
    }
    out << "ingested " << appended << " manifest(s) into " << history;
    if (failed > 0)
        out << " (" << failed << " unreadable, skipped)";
    out << "\n";
    return kSentinelOk;
}

int
runReport(Args &args, std::ostream &out, std::ostream &err)
{
    const std::string history =
        args.flag("--history").value_or("runs.jsonl");
    const std::string out_path =
        args.flag("--out").value_or("report.html");
    const std::string merged_path =
        args.flag("--merged-trace").value_or("");
    ReportInputs inputs;
    // --trace repeats: each occurrence is one process's trace dir
    // (Args::flag consumes the first occurrence per call).
    while (auto dir = args.flag("--trace"))
        inputs.traceDirs.push_back(*dir);
    if (auto title = args.flag("--title"))
        inputs.title = *title;
    if (auto stray = args.positional())
        return usageError(err, "report: unknown argument " + *stray);
    if (!args.rest().empty())
        return usageError(err, "report: unknown argument " +
                                   args.rest().front());

    HistoryLoad load = loadHistory(history);
    inputs.history = std::move(load.records);
    inputs.skippedLines = load.skippedLines;

    const std::string html = renderHtmlReport(inputs);
    if (!obs::atomicWriteFile(out_path, html)) {
        err << "smq_sentinel: cannot write " << out_path << "\n";
        return kSentinelUsage;
    }
    out << "wrote " << out_path << " (" << inputs.history.size()
        << " record(s), " << html.size() << " bytes)\n";

    if (!merged_path.empty()) {
        std::string note;
        const std::string merged =
            renderMergedChromeTrace(inputs.traceDirs, note);
        if (!obs::atomicWriteFile(merged_path, merged)) {
            err << "smq_sentinel: cannot write " << merged_path << "\n";
            return kSentinelUsage;
        }
        out << "wrote " << merged_path << " ("
            << inputs.traceDirs.size() << " trace dir(s)"
            << (note.empty() ? "" : "; " + note) << ")\n";
    }
    return kSentinelOk;
}

int
runCompact(Args &args, std::ostream &out, std::ostream &err)
{
    const std::string history =
        args.flag("--history").value_or("runs.jsonl");
    std::size_t keep = 0;
    if (auto v = args.flag("--keep")) {
        auto parsed = parseSizeFlag(*v);
        if (!parsed)
            return usageError(err, "compact: bad --keep '" + *v + "'");
        keep = *parsed;
    }
    if (auto stray = args.positional())
        return usageError(err, "compact: unknown argument " + *stray);

    const HistoryLoad before = loadHistory(history);
    if (!compactHistory(history, keep)) {
        err << "smq_sentinel: cannot compact " << history << "\n";
        return kSentinelUsage;
    }
    const HistoryLoad after = loadHistory(history);
    out << "compacted " << history << ": " << before.records.size()
        << " -> " << after.records.size() << " record(s), "
        << before.skippedLines << " corrupt line(s) dropped\n";
    return kSentinelOk;
}

int
runMerge(Args &args, std::ostream &out, std::ostream &err)
{
    const std::string out_path =
        args.flag("--out").value_or("merged_grid.txt");
    const std::string history = args.flag("--history").value_or("");
    std::vector<std::string> dirs;
    while (auto dir = args.positional())
        dirs.push_back(*dir);
    if (dirs.empty())
        return usageError(err, "merge needs at least one checkpoint DIR");
    if (!args.rest().empty())
        return usageError(err, "merge: unknown argument " +
                                   args.rest().front());

    MergedGrid merged;
    try {
        merged = mergeCheckpoints(dirs);
    } catch (const std::exception &e) {
        err << "smq_sentinel: " << e.what() << "\n";
        return kSentinelUsage;
    }

    std::string write_error;
    if (!obs::atomicWriteFile(out_path, renderMergedGrid(merged),
                              &write_error)) {
        err << "smq_sentinel: cannot write " << out_path
            << (write_error.empty() ? "" : " (" + write_error + ")")
            << "\n";
        return kSentinelUsage;
    }

    const std::size_t n_cells =
        merged.header.benchmarks.size() * merged.header.devices.size();
    out << "merged " << dirs.size() << " journal(s), shard(s)";
    for (const std::string &shard : merged.shardsSeen)
        out << " " << shard;
    out << "\n"
        << (n_cells - merged.missingCells.size()) << "/" << n_cells
        << " cell(s) final -> " << out_path << "\n";
    if (!merged.overlapCells.empty()) {
        out << "overlap: " << merged.overlapCells.size()
            << " cell(s) journaled identically by more than one shard\n";
    }
    if (merged.salvagedDropped > 0) {
        out << "dropped " << merged.salvagedDropped
            << " non-final (salvaged/superseded) record(s)\n";
    }
    for (std::size_t shard : merged.missingShards) {
        out << "missing shard: " << shard << "/"
            << merged.header.shardCount << "\n";
    }
    for (const std::string &cell : merged.missingCells)
        out << "missing cell: " << cell << "\n";

    if (!history.empty()) {
        HistoryRecord record;
        record.tool = "smq_sentinel_merge";
        record.extra["config"] = merged.header.config;
        std::string shards;
        for (const std::string &shard : merged.shardsSeen)
            shards += (shards.empty() ? "" : ",") + shard;
        record.extra["shards"] = shards;
        for (std::size_t r = 0; r < merged.rows.size(); ++r) {
            for (const CheckpointCell &cell : merged.cells[r]) {
                if (!cell.final || cell.scores.empty())
                    continue;
                double sum = 0.0;
                for (double s : cell.scores)
                    sum += s;
                record.values["score." + cell.key()] =
                    sum / static_cast<double>(cell.scores.size());
            }
        }
        std::string append_error;
        if (!appendHistory(history, record, &append_error)) {
            err << "smq_sentinel: cannot append to " << history
                << (append_error.empty() ? ""
                                         : " (" + append_error + ")")
                << "\n";
            return kSentinelUsage;
        }
        out << "appended merged record to " << history << "\n";
    }
    if (!merged.complete()) {
        out << "verdict: INCOMPLETE\n";
        return kSentinelRegression;
    }
    out << "verdict: complete\n";
    return kSentinelOk;
}

} // namespace

int
sentinelMain(const std::vector<std::string> &args, std::ostream &out,
             std::ostream &err)
{
    if (args.empty())
        return usageError(err, "missing subcommand");
    const std::string &command = args.front();
    Args rest(std::vector<std::string>(args.begin() + 1, args.end()));
    if (command == "check")
        return runCheck(rest, out, err);
    if (command == "baseline")
        return runBaseline(rest, out, err);
    if (command == "ingest")
        return runIngest(rest, out, err);
    if (command == "report")
        return runReport(rest, out, err);
    if (command == "compact")
        return runCompact(rest, out, err);
    if (command == "merge")
        return runMerge(rest, out, err);
    if (command == "--help" || command == "help") {
        out << kUsage;
        return kSentinelOk;
    }
    return usageError(err, "unknown subcommand: " + command);
}

} // namespace smq::report
