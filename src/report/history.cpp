#include "report/history.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/fsio.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace smq::report {

namespace {

void
writeNumber(std::ostream &out, double value)
{
    std::ostringstream text;
    text.precision(17);
    text << value;
    // The minimal JSON parser keeps number literals as text; make sure
    // bare "inf"/"nan" (invalid JSON) can never enter the store.
    std::string s = text.str();
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos)
        s = "0";
    out << s;
}

} // namespace

HistoryRecord
HistoryRecord::fromManifest(const obs::RunManifest &manifest)
{
    HistoryRecord rec;
    rec.tool = manifest.tool;
    rec.gitRev = manifest.gitRev;
    rec.deviceTableVersion = manifest.deviceTableVersion;
    rec.seed = manifest.seed;
    rec.shots = manifest.shots;
    rec.repetitions = manifest.repetitions;
    rec.jobs = manifest.jobs;
    rec.faultsEnabled = manifest.faultsEnabled;
    rec.faultSeed = manifest.faultSeed;
    rec.cacheHits = manifest.cacheHits;
    rec.cacheMisses = manifest.cacheMisses;
    rec.stages = manifest.stages;
    rec.counters = manifest.counters;
    rec.extra = manifest.extra;
    return rec;
}

std::string
HistoryRecord::toJsonLine() const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << obs::escapeJson(schema) << "\""
        << ",\"tool\":\"" << obs::escapeJson(tool) << "\""
        << ",\"git_rev\":\"" << obs::escapeJson(gitRev) << "\""
        << ",\"device_table_version\":\""
        << obs::escapeJson(deviceTableVersion) << "\""
        << ",\"config\":{\"seed\":" << seed << ",\"shots\":" << shots
        << ",\"repetitions\":" << repetitions << ",\"jobs\":" << jobs
        << ",\"faults\":" << (faultsEnabled ? "true" : "false")
        << ",\"fault_seed\":" << faultSeed << "}"
        << ",\"cache\":{\"hits\":" << cacheHits
        << ",\"misses\":" << cacheMisses << "}";

    out << ",\"stages\":{";
    bool first = true;
    for (const auto &[name, s] : stages) {
        out << (first ? "" : ",") << "\"" << obs::escapeJson(name)
            << "\":{\"count\":" << s.count
            << ",\"total_ns\":" << s.totalNs << ",\"min_ns\":" << s.minNs
            << ",\"max_ns\":" << s.maxNs << "}";
        first = false;
    }
    out << "},\"counters\":{";
    first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "" : ",") << "\"" << obs::escapeJson(name)
            << "\":" << value;
        first = false;
    }
    out << "},\"values\":{";
    first = true;
    for (const auto &[name, value] : values) {
        out << (first ? "" : ",") << "\"" << obs::escapeJson(name)
            << "\":";
        writeNumber(out, value);
        first = false;
    }
    out << "},\"extra\":{";
    first = true;
    for (const auto &[key, value] : extra) {
        out << (first ? "" : ",") << "\"" << obs::escapeJson(key)
            << "\":\"" << obs::escapeJson(value) << "\"";
        first = false;
    }
    out << "}}";
    return out.str();
}

HistoryRecord
HistoryRecord::fromJsonLine(const std::string &line)
{
    obs::JsonValue root = obs::parseJson(line);
    HistoryRecord rec;
    rec.schema = root.at("schema").asString();
    if (rec.schema.rfind(kHistorySchemaPrefix, 0) != 0)
        throw std::runtime_error("history: unknown schema '" +
                                 rec.schema + "'");
    rec.tool = root.at("tool").asString();
    // Everything below is best-effort so records written by a newer
    // schema version (extra fields, relaxed requirements) still load.
    if (const obs::JsonValue *v = root.find("git_rev"))
        rec.gitRev = v->asString();
    if (const obs::JsonValue *v = root.find("device_table_version"))
        rec.deviceTableVersion = v->asString();
    if (const obs::JsonValue *config = root.find("config")) {
        if (const obs::JsonValue *v = config->find("seed"))
            rec.seed = v->asU64();
        if (const obs::JsonValue *v = config->find("shots"))
            rec.shots = v->asU64();
        if (const obs::JsonValue *v = config->find("repetitions"))
            rec.repetitions = v->asU64();
        if (const obs::JsonValue *v = config->find("jobs"))
            rec.jobs = v->asU64();
        if (const obs::JsonValue *v = config->find("faults"))
            rec.faultsEnabled = v->asBool();
        if (const obs::JsonValue *v = config->find("fault_seed"))
            rec.faultSeed = v->asU64();
    }
    if (const obs::JsonValue *cache = root.find("cache")) {
        if (const obs::JsonValue *v = cache->find("hits"))
            rec.cacheHits = v->asU64();
        if (const obs::JsonValue *v = cache->find("misses"))
            rec.cacheMisses = v->asU64();
    }
    if (const obs::JsonValue *stages = root.find("stages")) {
        for (const auto &[name, s] : stages->object) {
            rec.stages[name] = obs::StageRollup{
                s.at("count").asU64(), s.at("total_ns").asU64(),
                s.at("min_ns").asU64(), s.at("max_ns").asU64()};
        }
    }
    if (const obs::JsonValue *counters = root.find("counters")) {
        for (const auto &[name, v] : counters->object)
            rec.counters[name] = v.asU64();
    }
    if (const obs::JsonValue *vals = root.find("values")) {
        for (const auto &[name, v] : vals->object)
            rec.values[name] = v.asDouble();
    }
    if (const obs::JsonValue *extra = root.find("extra")) {
        for (const auto &[key, v] : extra->object)
            rec.extra[key] = v.asString();
    }
    return rec;
}

bool
HistoryRecord::sameConfig(const HistoryRecord &other) const
{
    return tool == other.tool && shots == other.shots &&
           repetitions == other.repetitions &&
           faultsEnabled == other.faultsEnabled;
}

HistoryLoad
loadHistory(const std::string &path)
{
    HistoryLoad load;
    std::ifstream in(path);
    if (!in)
        return load; // first run: no store yet
    std::string line;
    bool last_was_corrupt = false;
    bool saw_any_line = false;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        saw_any_line = true;
        try {
            load.records.push_back(HistoryRecord::fromJsonLine(line));
            last_was_corrupt = false;
        } catch (const std::exception &) {
            ++load.skippedLines;
            last_was_corrupt = true;
        }
    }
    load.corruptTail = saw_any_line && last_was_corrupt;
    obs::counter(obs::names::kHistoryLoaded).add(load.records.size());
    obs::counter(obs::names::kHistorySkipped).add(load.skippedLines);
    return load;
}

bool
appendHistory(const std::string &path, const HistoryRecord &record,
              std::string *error)
{
    if (!obs::appendLineDurable(path, record.toJsonLine(), error))
        return false;
    obs::counter(obs::names::kHistoryAppends).add();
    return true;
}

bool
compactHistory(const std::string &path, std::size_t keepLast)
{
    HistoryLoad load = loadHistory(path);
    std::size_t first = 0;
    if (keepLast > 0 && load.records.size() > keepLast)
        first = load.records.size() - keepLast;
    std::ostringstream out;
    for (std::size_t i = first; i < load.records.size(); ++i)
        out << load.records[i].toJsonLine() << "\n";
    return obs::atomicWriteFile(path, out.str());
}

} // namespace smq::report
