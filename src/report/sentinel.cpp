#include "report/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace smq::report {

namespace {

/** Key under which the overhead fraction rides in history values. */
constexpr const char *kObsOverheadKey = "obs_overhead_frac";
/** Display name of the overhead pseudo-stage in the verdict table. */
constexpr const char *kObsOverheadStage = "obs_overhead_frac";
/** History key / pseudo-stage of the tracing-propagation overhead. */
constexpr const char *kObsPropagationKey = "obs_propagation_frac";
/** Absolute overhead budget (fraction), inherited from bench_perf.
 *  The propagation path is held to the same 2%: carrying a trace
 *  context must cost no more than metrics collection itself. */
constexpr double kObsOverheadBudget = 0.02;

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
medianAbsoluteDeviation(const std::vector<double> &values, double center)
{
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double v : values)
        deviations.push_back(std::fabs(v - center));
    return median(std::move(deviations));
}

/** Mean wall ms a record observed for @p stage, or -1 when absent. */
double
stageMsOf(const HistoryRecord &record, const std::string &stage)
{
    auto it = record.stages.find(stage);
    if (it == record.stages.end() || it->second.count == 0)
        return -1.0;
    return static_cast<double>(it->second.totalNs) /
           static_cast<double>(it->second.count) / 1e6;
}

} // namespace

PerfSnapshot
loadPerfJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("sentinel: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    obs::JsonValue root = obs::parseJson(buffer.str());

    PerfSnapshot snap;
    for (const obs::JsonValue &stage : root.at("stages").array) {
        snap.stageMs[stage.at("name").asString()] =
            stage.at("wall_ms").asDouble();
    }
    if (const obs::JsonValue *obs_block = root.find("obs_overhead")) {
        if (const obs::JsonValue *frac = obs_block->find("overhead_frac"))
            snap.obsOverheadFrac = frac->asDouble();
        // Optional: pre-PR-9 perf files carry no propagation section,
        // and the sentinel must keep accepting them.
        if (const obs::JsonValue *frac =
                obs_block->find("propagation_frac"))
            snap.obsPropagationFrac = frac->asDouble();
    }
    if (const obs::JsonValue *jobs = root.find("grid_jobs"))
        snap.gridJobs = jobs->asU64();
    if (const obs::JsonValue *config = root.find("config")) {
        if (const obs::JsonValue *v = config->find("shots"))
            snap.shots = v->asU64();
        if (const obs::JsonValue *v = config->find("repetitions"))
            snap.repetitions = v->asU64();
    }
    return snap;
}

HistoryRecord
historyFromPerf(const PerfSnapshot &snapshot, const std::string &tool)
{
    HistoryRecord rec;
    rec.tool = tool;
    rec.shots = snapshot.shots;
    rec.repetitions = snapshot.repetitions;
    rec.jobs = snapshot.gridJobs;
    for (const auto &[name, ms] : snapshot.stageMs) {
        const std::uint64_t ns =
            static_cast<std::uint64_t>(std::max(0.0, ms) * 1e6);
        rec.stages[name] = obs::StageRollup{1, ns, ns, ns};
    }
    rec.values[kObsOverheadKey] = snapshot.obsOverheadFrac;
    if (snapshot.obsPropagationFrac >= 0.0)
        rec.values[kObsPropagationKey] = snapshot.obsPropagationFrac;
    return rec;
}

bool
CheckReport::regression() const
{
    for (const StageCheck &stage : stages) {
        if (stage.regressed)
            return true;
    }
    return false;
}

std::string
CheckReport::render() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(2);
    out << std::left << std::setw(32) << "stage" << std::right
        << std::setw(12) << "current" << std::setw(22)
        << "baseline med+/-MAD" << std::setw(8) << "ratio"
        << std::setw(5) << "n"
        << "  verdict\n";
    for (const StageCheck &s : stages) {
        out << std::left << std::setw(32) << s.stage << std::right
            << std::setw(10) << s.currentMs << "  ";
        if (s.samples == 0) {
            out << std::setw(22) << "(no baseline)" << std::setw(8)
                << "-";
        } else {
            std::ostringstream base;
            base << std::fixed << std::setprecision(2) << s.medianMs
                 << " +/- " << s.madMs;
            out << std::setw(22) << base.str() << std::setw(7)
                << s.ratio << "x";
        }
        out << std::setw(5) << s.samples << "  "
            << (s.regressed ? "REGRESSED"
                            : (s.graced ? "grace" : "ok"))
            << "\n";
    }
    if (!note.empty())
        out << note << "\n";
    return out.str();
}

CheckReport
checkPerf(const PerfSnapshot &current,
          const std::vector<HistoryRecord> &history,
          const SentinelOptions &options)
{
    CheckReport report;

    // Newest `window` records of the matching configuration.
    HistoryRecord key;
    key.tool = options.tool;
    key.shots = current.shots;
    key.repetitions = current.repetitions;
    key.faultsEnabled = false;
    std::vector<const HistoryRecord *> matching;
    for (const HistoryRecord &rec : history) {
        if (rec.sameConfig(key))
            matching.push_back(&rec);
    }
    if (matching.size() > options.window) {
        matching.erase(matching.begin(),
                       matching.end() -
                           static_cast<std::ptrdiff_t>(options.window));
    }
    report.baselineRuns = matching.size();

    auto judge = [&](const std::string &stage, double current_value,
                     const std::vector<double> &samples,
                     double mad_floor, double abs_gate) {
        StageCheck check;
        check.stage = stage;
        check.currentMs = current_value;
        check.samples = samples.size();
        if (samples.size() < options.minSamples) {
            check.graced = true;
        } else {
            check.medianMs = median(samples);
            check.madMs =
                medianAbsoluteDeviation(samples, check.medianMs);
            check.ratio = check.medianMs > 0.0
                              ? current_value / check.medianMs
                              : 0.0;
            const double mad_term =
                options.madGate * std::max(check.madMs, mad_floor);
            check.regressed =
                current_value >
                    check.medianMs * (1.0 + options.threshold) &&
                current_value - check.medianMs > mad_term &&
                current_value > abs_gate;
        }
        report.stages.push_back(check);
    };

    for (const auto &[stage, ms] : current.stageMs) {
        if (ms < options.minMs)
            continue; // below timer noise; never judged
        std::vector<double> samples;
        for (const HistoryRecord *rec : matching) {
            double v = stageMsOf(*rec, stage);
            if (v >= 0.0)
                samples.push_back(v);
        }
        judge(stage, ms, samples, options.madFloorMs, 0.0);
    }

    // Obs-overhead fraction: same robust gates, plus the absolute 2%
    // budget — overhead inside budget never fails the build.
    {
        std::vector<double> samples;
        for (const HistoryRecord *rec : matching) {
            auto it = rec->values.find(kObsOverheadKey);
            if (it != rec->values.end())
                samples.push_back(it->second);
        }
        judge(kObsOverheadStage, current.obsOverheadFrac, samples,
              /*mad_floor=*/0.005, /*abs_gate=*/kObsOverheadBudget);
    }

    // Propagation overhead: the distributed-tracing hot path (context
    // install + span tagging) under the same robust gates and the
    // same absolute 2% budget. Skipped entirely for perf files that
    // predate the measurement.
    if (current.obsPropagationFrac >= 0.0) {
        std::vector<double> samples;
        for (const HistoryRecord *rec : matching) {
            auto it = rec->values.find(kObsPropagationKey);
            if (it != rec->values.end())
                samples.push_back(it->second);
        }
        judge(kObsPropagationKey, current.obsPropagationFrac, samples,
              /*mad_floor=*/0.005, /*abs_gate=*/kObsOverheadBudget);
    }

    if (report.baselineRuns == 0) {
        report.note = "no matching baseline runs (first run of this "
                      "config) - all stages pass on grace";
    } else if (report.baselineRuns < options.minSamples) {
        report.note =
            "only " + std::to_string(report.baselineRuns) +
            " baseline run(s); need " +
            std::to_string(options.minSamples) +
            " for a verdict - stages pass on small-sample grace";
    }
    return report;
}

} // namespace smq::report
