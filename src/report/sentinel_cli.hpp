/**
 * @file
 * The `smq_sentinel` command-line surface, packaged as a library
 * function so tests can drive subcommands in-process and assert exit
 * codes without spawning binaries.
 *
 * Subcommands:
 *
 *     check PERF_JSON --baseline FILE [--threshold F]
 *           [--min-samples N] [--window N] [--tool NAME]
 *         Compare a fresh BENCH_perf.json against the history store.
 *     baseline PERF_JSON [--history FILE]
 *         Promote the current perf snapshot into the store.
 *     ingest DIR [--history FILE]
 *         Scan DIR recursively for `*_manifest.json` files and append
 *         each as a history record (sorted path order, deterministic).
 *     report [--history FILE] [--trace DIR] [--out FILE] [--title T]
 *         Render the self-contained HTML run report.
 *     compact [--history FILE] [--keep N]
 *         Rewrite the store atomically, dropping corrupt lines.
 *     merge DIR... [--out FILE] [--history FILE]
 *         Fold shard checkpoint journals into one merged grid report,
 *         flagging overlapping and missing shards/cells.
 *
 * Exit codes: 0 success (including grace passes), 1 perf regression
 * or incomplete merge, 2 usage or I/O error.
 */

#ifndef SMQ_REPORT_SENTINEL_CLI_HPP
#define SMQ_REPORT_SENTINEL_CLI_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace smq::report {

/** Exit codes of sentinelMain (stable contract, used by smq_check). */
enum SentinelExit : int
{
    kSentinelOk = 0,
    kSentinelRegression = 1,
    kSentinelUsage = 2,
};

/**
 * Run one sentinel invocation. @p args excludes the program name;
 * diagnostics go to @p out / @p err.
 */
int sentinelMain(const std::vector<std::string> &args, std::ostream &out,
                 std::ostream &err);

} // namespace smq::report

#endif // SMQ_REPORT_SENTINEL_CLI_HPP
