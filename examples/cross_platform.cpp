/**
 * @file
 * Cross-platform comparison (the paper's headline use case): run a
 * communication-heavy benchmark (Mermin-Bell) and a hardware-matched
 * one (ZZ-SWAP QAOA) across all nine device models and watch the
 * topology-vs-fidelity trade-off emerge.
 */

#include <iostream>

#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/harness.hpp"
#include "stats/table.hpp"
#include "obs/metrics.hpp"

using namespace smq;

int
main()
{
    obs::setMetricsEnabled(true);

    core::MerminBellBenchmark mermin(4);
    core::QaoaSwapBenchmark qaoa(4, 11);

    core::HarnessOptions options;
    options.shots = 1000;
    options.repetitions = 3;

    stats::TextTable table({"device", "architecture", "mermin_bell_4",
                            "qaoa_zzswap_4", "swaps (mermin)"});
    for (const device::Device &dev : device::allDevices()) {
        core::BenchmarkRun m = core::runBenchmark(mermin, dev, options);
        core::BenchmarkRun q = core::runBenchmark(qaoa, dev, options);
        auto cell = [](const core::BenchmarkRun &run) {
            if (run.tooLarge)
                return std::string("X");
            return stats::formatFixed(run.summary.mean, 3);
        };
        table.addRow({dev.name,
                      dev.kind == device::ArchitectureKind::TrappedIon
                          ? "trapped ion"
                          : "superconducting",
                      cell(m), cell(q),
                      m.tooLarge ? "-" : std::to_string(m.swapsInserted)});
    }
    std::cout << table.render() << "\n";
    std::cout << "The all-to-all trapped-ion model routes the Mermin\n"
                 "measurement basis for free, while sparse\n"
                 "superconducting devices pay in SWAPs; the nearest-\n"
                 "neighbour ZZ-SWAP ansatz levels the field (paper\n"
                 "Sec. VI-VII).\n";

    core::makeRunManifest("cross_platform", options)
        .writeFile("cross_platform_manifest.json");
    return 0;
}
