/**
 * @file
 * The fault-tolerant job layer in action: run the quick suite across
 * three device classes under a seeded fault schedule and a suite
 * deadline, and print the structured report.
 *
 * Expected output mixes every degradation mode:
 *   - Ok cells with scores and error bars,
 *   - Partial cells (deadline/attempt-cap salvage, shot truncation)
 *     with widened error bars and their cause,
 *   - skip(no-mcm) for the error-correction proxies on the trapped-ion
 *     device (no mid-circuit measurement, as on the real service),
 *   - X for benchmarks that do not fit the 4-qubit AQT device.
 *
 * Re-running reproduces the report byte-for-byte; change --seed to see
 * a different (equally reproducible) fault schedule.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

#include "core/harness.hpp"
#include "core/suites.hpp"
#include "jobs/report.hpp"
#include "obs/metrics.hpp"
#include "report/history.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    obs::setMetricsEnabled(true);

    std::uint64_t seed = 7;
    std::string history_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (std::strcmp(argv[i], "--history") == 0)
            history_path = argv[i + 1];
    }

    // A fault schedule in the regime of a bad day on the cloud queue.
    jobs::FaultInjector injector(seed);
    jobs::FaultProfile profile;
    profile.pTransient = 0.20;      // transient execution errors
    profile.pQueueTimeout = 0.10;   // jobs expiring in the queue
    profile.pShotTruncation = 0.15; // jobs returning partial shots
    profile.calibrationDrift = 0.08;
    injector.setDefaultProfile(profile);

    jobs::JobOptions options;
    options.harness.shots = 300;
    options.harness.repetitions = 3;
    options.retry.maxAttempts = 3;
    options.suiteBudgetUs = 3600.0e6; // one simulated hour

    std::vector<device::Device> devices = {
        device::ibmLagos(), device::ionqDevice(), device::aqtDevice()};

    const auto wall_start = std::chrono::steady_clock::now();
    jobs::SuiteReport report =
        jobs::runSweep(core::quickSuite(), devices, options, injector);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    std::cout << "Fault-tolerant sweep (seed " << seed
              << ", 1 simulated hour budget):\n\n"
              << jobs::renderReport(report);

    // Event trails. Only scoreable cells carry a salvage trail worth
    // reading shot counts from; for the rest the detail narrates why
    // nothing was salvaged, so report it under the failure cause
    // instead of presenting it as partial data.
    std::cout << "\nper-cell event trails (salvaged cells):\n";
    for (const jobs::ReportRow &row : report.rows) {
        for (const core::BenchmarkRun &run : row.runs) {
            if (run.detail.empty() || !core::scoreable(run.status))
                continue;
            std::cout << "  " << run.benchmark << " @ " << run.device
                      << " [" << core::toString(run.status) << "/"
                      << core::causeToken(run.cause)
                      << "]: " << run.detail << "\n";
        }
    }
    std::cout << "\nunsalvageable cells:\n";
    for (const jobs::ReportRow &row : report.rows) {
        for (const core::BenchmarkRun &run : row.runs) {
            if (run.detail.empty() || core::scoreable(run.status))
                continue;
            std::cout << "  " << run.benchmark << " @ " << run.device
                      << " [" << core::toString(run.status) << "/"
                      << core::causeToken(run.cause)
                      << "]: " << run.detail << "\n";
        }
    }

    // Provenance: write the manifest with a per-status tally, then read
    // it back through the parser — the footer below comes from the
    // file, proving the round trip the tooling relies on.
    obs::RunManifest manifest =
        core::makeRunManifest("job_report", options.harness);
    manifest.seed = seed;
    manifest.faultsEnabled = true;
    manifest.faultSeed = seed;
    std::map<std::string, std::size_t> tally;
    for (const jobs::ReportRow &row : report.rows) {
        for (const core::BenchmarkRun &run : row.runs)
            ++tally[core::toString(run.status)];
    }
    for (const auto &[status, count] : tally)
        manifest.extra["cells_" + status] = std::to_string(count);
    const std::string manifest_path = "job_report_manifest.json";
    if (!manifest.writeFile(manifest_path)) {
        std::cerr << "error: could not write " << manifest_path << "\n";
        return 1;
    }
    obs::RunManifest readback = obs::RunManifest::readFile(manifest_path);
    std::cout << "\nprovenance (read back from " << manifest_path
              << "): tool=" << readback.tool << ", git=" << readback.gitRev
              << ", devices=" << readback.deviceTableVersion
              << ", fault seed=" << readback.faultSeed << ", attempts="
              << readback.counters["jobs.retry.attempts"] << "\n";

    // Optional run-history hookup: one line comparing this run to the
    // previous run of the same configuration, then append this one.
    if (!history_path.empty()) {
        double score_sum = 0.0;
        std::size_t score_count = 0;
        for (const jobs::ReportRow &row : report.rows) {
            for (const core::BenchmarkRun &run : row.runs) {
                if (!core::scoreable(run.status) || run.scores.empty())
                    continue;
                score_sum += run.summary.mean;
                ++score_count;
            }
        }
        smq::report::HistoryRecord record =
            smq::report::HistoryRecord::fromManifest(manifest);
        record.values["score.mean"] =
            score_count > 0 ? score_sum /
                                  static_cast<double>(score_count)
                            : 0.0;
        record.values["wall_ms"] = wall_ms;

        smq::report::HistoryLoad load =
            smq::report::loadHistory(history_path);
        const smq::report::HistoryRecord *previous = nullptr;
        for (const smq::report::HistoryRecord &old : load.records) {
            if (old.sameConfig(record))
                previous = &old;
        }
        if (previous == nullptr) {
            std::cout << "history: first run of this config in "
                      << history_path << "\n";
        } else {
            auto value_of = [](const smq::report::HistoryRecord &r,
                               const char *key) {
                auto it = r.values.find(key);
                return it != r.values.end() ? it->second : 0.0;
            };
            const double prev_score = value_of(*previous, "score.mean");
            const double prev_wall = value_of(*previous, "wall_ms");
            std::cout << "history: vs previous same-config run (rev "
                      << previous->gitRev << "): score.mean "
                      << prev_score << " -> "
                      << record.values["score.mean"] << " ("
                      << (record.values["score.mean"] >= prev_score
                              ? "+"
                              : "")
                      << record.values["score.mean"] - prev_score
                      << "), wall " << prev_wall << " -> " << wall_ms
                      << " ms\n";
        }
        if (!smq::report::appendHistory(history_path, record)) {
            std::cerr << "error: could not append to " << history_path
                      << "\n";
            return 1;
        }
    }
    return 0;
}
