/**
 * @file
 * The HPCA artifact's demonstration, reproduced: evaluate benchmarks
 * under a noise model of increasing strength and watch every score
 * decay from ~1 toward its random-guessing floor.
 */

#include <iostream>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "sim/runner.hpp"
#include "stats/table.hpp"
#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

using namespace smq;

int
main()
{
    obs::setMetricsEnabled(true);

    // a generic NISQ-flavoured base model
    sim::NoiseModel base;
    base.enabled = true;
    base.p1 = 0.002;
    base.p2 = 0.01;
    base.pMeas = 0.015;
    base.pReset = 0.015;
    base.t1 = 100.0;
    base.t2 = 80.0;
    base.time1q = 0.035;
    base.time2q = 0.4;
    base.timeMeas = 5.0;

    std::vector<core::BenchmarkPtr> suite;
    suite.push_back(std::make_unique<core::GhzBenchmark>(4));
    suite.push_back(std::make_unique<core::MerminBellBenchmark>(3));
    suite.push_back(std::make_unique<core::BitCodeBenchmark>(
        core::BitCodeBenchmark::alternating(3, 2)));
    suite.push_back(
        std::make_unique<core::HamiltonianSimulationBenchmark>(4, 3));

    std::vector<double> scales = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
    std::vector<std::string> headers = {"benchmark"};
    for (double s : scales)
        headers.push_back("x" + stats::formatFixed(s, 1));
    stats::TextTable table(headers);

    for (const core::BenchmarkPtr &bench : suite) {
        std::vector<std::string> cells = {bench->name()};
        for (double scale : scales) {
            sim::RunOptions options;
            options.shots = 3000;
            options.noise = base.scaled(scale);
            stats::Rng rng(29);
            std::vector<stats::Counts> counts;
            for (const qc::Circuit &circuit : bench->circuits())
                counts.push_back(sim::run(circuit, options, rng));
            cells.push_back(
                stats::formatFixed(bench->score(counts), 3));
        }
        table.addRow(std::move(cells));
    }
    std::cout << table.render() << "\n";
    std::cout << "Scores decrease monotonically (up to shot noise) with\n"
                 "the noise scale — the expected behaviour the artifact\n"
                 "notebook demonstrates before trusting any cross-\n"
                 "platform comparison.\n";

    obs::RunManifest manifest = obs::RunManifest::capture("noise_sweep");
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.writeFile("noise_sweep_manifest.json");
    return 0;
}
