/**
 * @file
 * Scalable benchmarking with the stabilizer engine: run the GHZ
 * benchmark end-to-end at 200 qubits — generation, noisy execution,
 * scoring — in a couple of seconds per configuration. This is the
 * paper's scalability principle in action: neither the circuit
 * generator, nor the execution substrate, nor the score function
 * grows exponentially for the suite's Clifford members.
 */

#include <chrono>
#include <iostream>

#include "core/benchmarks/ghz.hpp"
#include "sim/stabilizer.hpp"
#include "stats/table.hpp"
#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

using namespace smq;

int
main()
{
    obs::setMetricsEnabled(true);

    const std::size_t n = 200;
    core::GhzBenchmark bench(n);
    qc::Circuit circuit = bench.circuits()[0];
    std::cout << "benchmark: " << bench.name() << " ("
              << circuit.numQubits() << " qubits, " << circuit.size()
              << " instructions)\n";
    std::cout << "Clifford circuit: "
              << (sim::isCliffordCircuit(circuit) ? "yes" : "no")
              << "\n\n";

    stats::TextTable table({"2q error rate", "score", "wall time (ms)"});
    for (double p2 : {0.0, 1e-4, 5e-4, 2e-3}) {
        sim::RunOptions options;
        options.shots = 256;
        if (p2 > 0.0) {
            options.noise.enabled = true;
            options.noise.p1 = p2 / 10.0;
            options.noise.p2 = p2;
            options.noise.pMeas = p2;
        }
        stats::Rng rng(5);
        auto start = std::chrono::steady_clock::now();
        stats::Counts counts =
            sim::runStabilizer(circuit, options, rng);
        auto stop = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        table.addRow({stats::formatScientific(p2, 1),
                      stats::formatFixed(bench.score({counts}), 3),
                      stats::formatFixed(ms, 0)});
    }
    std::cout << table.render() << "\n";
    std::cout << "A dense state-vector simulation of " << n
              << " qubits would need 2^" << n
              << " amplitudes; the tableau engine needs O(n^2) bits.\n";

    obs::RunManifest manifest = obs::RunManifest::capture("scalable_clifford");
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.writeFile("scalable_clifford_manifest.json");
    return 0;
}
