/**
 * @file
 * Extending the suite (the paper's "adaptivity" principle): define a
 * brand-new application benchmark against the public Benchmark
 * interface — W-state preparation, scored by Hellinger fidelity — run
 * it through the standard harness, and measure how much feature-space
 * coverage it adds to the suite.
 */

#include <iostream>
#include <memory>

#include "core/coverage.hpp"
#include "core/harness.hpp"
#include "core/suites.hpp"
#include "qc/library.hpp"
#include "stats/hellinger.hpp"
#include "stats/table.hpp"
#include "obs/metrics.hpp"

using namespace smq;

namespace {

/** W-state preparation benchmark: |W_n> has one uniform excitation. */
class WStateBenchmark : public core::Benchmark
{
  public:
    explicit WStateBenchmark(std::size_t num_qubits)
        : numQubits_(num_qubits)
    {
    }

    std::string name() const override
    {
        return "w_state_" + std::to_string(numQubits_);
    }

    std::size_t numQubits() const override { return numQubits_; }

    std::vector<qc::Circuit> circuits() const override
    {
        qc::Circuit circuit = qc::library::wState(numQubits_);
        circuit.setName(name());
        circuit.measureAll();
        return {circuit};
    }

    double score(const std::vector<stats::Counts> &counts) const override
    {
        // ideal: exactly one excitation, uniformly placed
        stats::Distribution ideal;
        for (std::size_t q = 0; q < numQubits_; ++q) {
            std::string key(numQubits_, '0');
            key[q] = '1';
            ideal.add(key, 1.0 / static_cast<double>(numQubits_));
        }
        return stats::hellingerFidelity(counts.at(0), ideal);
    }

  private:
    std::size_t numQubits_;
};

} // namespace

int
main()
{
    obs::setMetricsEnabled(true);

    WStateBenchmark bench(5);

    // run through the standard harness, like any built-in benchmark
    core::HarnessOptions options;
    options.shots = 2000;
    options.repetitions = 3;
    stats::TextTable table({"device", "w_state_5 score"});
    for (const device::Device &dev :
         {device::perfectDevice(5), device::ibmLagos(),
          device::ionqDevice()}) {
        core::BenchmarkRun run = core::runBenchmark(bench, dev, options);
        table.addRow({dev.name,
                      stats::formatFixed(run.summary.mean, 3) + " +- " +
                          stats::formatFixed(run.summary.stddev, 3)});
    }
    std::cout << table.render() << "\n";

    // how much coverage does the new application add? (Sec. IV-G)
    auto points = core::supermarqFeaturePoints();
    double before = core::computeCoverage("suite", points).volume;
    for (std::size_t n : {3, 5, 10, 50})
        points.push_back(
            core::computeFeatures(WStateBenchmark(n).circuits()[0]));
    double after = core::computeCoverage("suite+w", points).volume;

    std::cout << "coverage volume without W-state: " << before << "\n";
    std::cout << "coverage volume with    W-state: " << after << "\n";
    std::cout << "(a useful new benchmark should expand — or at least "
                 "not shrink — the hull)\n";

    core::makeRunManifest("custom_benchmark", options)
        .writeFile("custom_benchmark_manifest.json");
    return 0;
}
