/**
 * @file
 * Feature explorer: compute the SupermarQ feature vector of ANY
 * OpenQASM 2.0 program — your own circuits included — and see where it
 * lands relative to the suite's applications.
 *
 * Usage: feature_explorer [file.qasm]
 * Without an argument, a built-in sample program is analysed.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/coverage.hpp"
#include "core/features.hpp"
#include "core/suites.hpp"
#include "geom/hull.hpp"
#include "qc/qasm.hpp"
#include "stats/table.hpp"
#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

using namespace smq;

namespace {

const char *kSampleProgram = R"(OPENQASM 2.0;
include "qelib1.inc";
// iterative phase estimation flavoured sample with qubit reuse
qreg q[3];
creg c[4];
h q[0];
cx q[0],q[1];
cp(pi/4) q[0],q[2];
h q[0];
measure q[0] -> c[0];
reset q[0];
h q[0];
cp(pi/2) q[0],q[2];
h q[0];
measure q[0] -> c[1];
measure q[1] -> c[2];
measure q[2] -> c[3];
)";

} // namespace

int
main(int argc, char **argv)
{
    obs::setMetricsEnabled(true);

    std::string text;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    } else {
        std::cout << "(no file given; analysing the built-in sample)\n\n";
        text = kSampleProgram;
    }

    qc::Circuit circuit;
    try {
        circuit = qc::fromQasm(text);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }

    core::FeatureVector f = core::computeFeatures(circuit);
    core::ProgramStats s = core::computeStats(circuit);

    std::cout << "program: " << s.numQubits << " qubits, " << s.gateCount
              << " operations, depth " << s.depth << ", "
              << s.twoQubitGates << " two-qubit gates, "
              << s.measurements << " measurements, " << s.resets
              << " resets\n\n";

    stats::TextTable table({"feature", "value"});
    const auto &names = core::FeatureVector::axisNames();
    auto values = f.asArray();
    for (std::size_t i = 0; i < names.size(); ++i)
        table.addRow({names[i], stats::formatFixed(values[i], 4)});
    std::cout << table.render() << "\n";

    // situate the program inside the suite's coverage hull
    auto suite_points = core::supermarqFeaturePoints();
    core::CoverageResult cov =
        core::computeCoverage("SupermarQ", suite_points);
    geom::Point p(values.begin(), values.end());
    bool inside = false;
    {
        std::vector<geom::Point> pts;
        for (const core::FeatureVector &v : suite_points) {
            auto a = v.asArray();
            pts.emplace_back(a.begin(), a.end());
        }
        geom::HullResult hull = geom::convexHull(pts, 6);
        inside = hull.contains(p, 1e-6);
    }
    std::cout << "SupermarQ suite coverage volume: " << cov.volume
              << "\n";
    std::cout << "your program is " << (inside ? "INSIDE" : "OUTSIDE")
              << " the suite's feature hull"
              << (inside ? "" : " — it stresses hardware in a way the "
                                "suite does not yet cover")
              << "\n";

    obs::RunManifest manifest = obs::RunManifest::capture("feature_explorer");
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.writeFile("feature_explorer_manifest.json");
    return 0;
}
