/**
 * @file
 * Quickstart: the 60-second tour of the public API.
 *
 * Builds the GHZ benchmark, inspects its OpenQASM and feature vector,
 * runs it noiselessly and on a calibrated device model, and prints the
 * scores — the full generate -> transpile -> execute -> score loop of
 * the paper's methodology on one page.
 */

#include <iostream>

#include "core/benchmarks/ghz.hpp"
#include "core/features.hpp"
#include "core/harness.hpp"
#include "qc/qasm.hpp"
#include "obs/metrics.hpp"

using namespace smq;

int
main()
{
    obs::setMetricsEnabled(true);

    // 1. pick a benchmark: GHZ state preparation on 5 qubits
    core::GhzBenchmark bench(5);
    qc::Circuit circuit = bench.circuits()[0];

    // 2. benchmarks are specified at the OpenQASM level (paper Sec. V)
    std::cout << "--- OpenQASM 2.0 ---\n" << qc::toQasm(circuit) << "\n";

    // 3. the six SupermarQ features (paper Sec. III-B)
    core::FeatureVector f = core::computeFeatures(circuit);
    std::cout << "--- feature vector ---\n";
    const auto &names = core::FeatureVector::axisNames();
    auto values = f.asArray();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::cout << "  " << names[i] << ": " << values[i] << "\n";

    // 4. execute on a perfect machine and on IBM-Casablanca's
    //    calibrated noise model (Table II)
    core::HarnessOptions options;
    options.shots = 2000;
    options.repetitions = 3;

    core::BenchmarkRun perfect =
        core::runBenchmark(bench, device::perfectDevice(5), options);
    core::BenchmarkRun noisy =
        core::runBenchmark(bench, device::ibmCasablanca(), options);

    std::cout << "\n--- scores (mean +- stddev over "
              << options.repetitions << " runs) ---\n";
    std::cout << "  perfect device : " << perfect.summary.mean << " +- "
              << perfect.summary.stddev << "\n";
    std::cout << "  IBM-Casablanca : " << noisy.summary.mean << " +- "
              << noisy.summary.stddev << "  (" << noisy.swapsInserted
              << " swaps, " << noisy.physicalTwoQubitGates
              << " native 2q gates)\n";

    core::makeRunManifest("quickstart", options)
        .writeFile("quickstart_manifest.json");
    return 0;
}
