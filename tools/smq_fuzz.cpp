/**
 * @file
 * `smq_fuzz` — differential fuzzing of the simulator and toolflow
 * substrates. Thin wrapper over fuzz::fuzzMain (see fuzz/fuzz_cli.hpp
 * for the flag set and exit-code contract).
 */

#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz_cli.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return smq::fuzz::fuzzMain(args, std::cout, std::cerr);
}
