/**
 * @file
 * Thin entry point for the perf sentinel; all logic (and its tests)
 * live in src/report/sentinel_cli.cpp. The `submit` subcommand is the
 * serve-daemon client (src/serve/serve_cli.cpp) and is dispatched
 * here so the report library keeps its obs-only dependency set.
 */

#include <iostream>
#include <string>
#include <vector>

#include "report/sentinel_cli.hpp"
#include "serve/serve_cli.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && args.front() == "submit") {
        return smq::serve::submitMain(
            std::vector<std::string>(args.begin() + 1, args.end()),
            std::cout, std::cerr);
    }
    return smq::report::sentinelMain(args, std::cout, std::cerr);
}
