/**
 * @file
 * Thin entry point for the perf sentinel; all logic (and its tests)
 * live in src/report/sentinel_cli.cpp.
 */

#include <iostream>
#include <string>
#include <vector>

#include "report/sentinel_cli.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return smq::report::sentinelMain(args, std::cout, std::cerr);
}
