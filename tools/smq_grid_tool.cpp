/**
 * @file
 * Minimal resilient-grid driver for the kill/resume and shard-union
 * tests: a configurable slice of the quick suite executed across a
 * configurable prefix of the device table, through exactly the same
 * computeGrid() machinery (sharding, checkpoint journal, cooperative
 * shutdown, crash hooks) the Fig. 2 regenerator uses — but small
 * enough that the tests can kill it at every journal boundary and
 * re-run the sweep dozens of times.
 *
 * Flags: the standard scale flags (--jobs, --shard i/N,
 * --checkpoint DIR, --resume DIR, ...) plus
 *     --out FILE       write the canonical grid text (fig2 cache
 *                      format) for byte-identity comparisons
 *     --benchmarks K   first K benchmarks of the quick suite
 *     --devices K      first K devices of the device table
 *     --shots N        shots per circuit per repetition
 *
 * Exit codes: 0 complete; 75 interrupted (resume me); 74 journal or
 * output write failure; 2 usage / foreign resume journal.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "device/device.hpp"
#include "fig_data.hpp"
#include "obs/fsio.hpp"
#include "report/checkpoint.hpp"

using namespace smq;

namespace {

std::size_t
sizeFlag(int argc, char **argv, const char *name, std::size_t fallback)
{
    const std::size_t name_len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return static_cast<std::size_t>(
                std::strtoul(argv[i + 1], nullptr, 10));
        if (std::strncmp(argv[i], name, name_len) == 0 &&
            argv[i][name_len] == '=')
            return static_cast<std::size_t>(
                std::strtoul(argv[i] + name_len + 1, nullptr, 10));
    }
    return fallback;
}

std::string
stringFlag(int argc, char **argv, const char *name)
{
    const std::size_t name_len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], name, name_len) == 0 &&
            argv[i][name_len] == '=')
            return argv[i] + name_len + 1;
    }
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::scaleFromArgs(argc, argv);
    scale.useCache = false;
    scale.defaultShots = sizeFlag(argc, argv, "--shots", 60);
    scale.repetitions = 2;

    std::vector<core::BenchmarkPtr> suite = core::quickSuite();
    const std::size_t n_bench =
        sizeFlag(argc, argv, "--benchmarks", suite.size());
    if (n_bench < suite.size())
        suite.resize(n_bench);

    std::vector<device::Device> devices = device::allDevices();
    const std::size_t n_dev =
        sizeFlag(argc, argv, "--devices", devices.size());
    if (n_dev < devices.size())
        devices.resize(n_dev);

    bench::GridOutcome outcome =
        bench::computeGrid(scale, suite, devices);
    if (outcome.configMismatch) {
        std::cerr << "smq_grid_tool: " << outcome.mismatchDetail << "\n";
        return outcome.exitCode();
    }

    const std::string out_path = stringFlag(argc, argv, "--out");
    if (!out_path.empty()) {
        std::string error;
        if (!obs::atomicWriteFile(out_path,
                                  bench::serializeGrid(outcome.grid),
                                  &error)) {
            std::cerr << "smq_grid_tool: cannot write " << out_path
                      << (error.empty() ? "" : " (" + error + ")")
                      << "\n";
            return report::kExitStorageError;
        }
    }
    if (outcome.storageError) {
        std::cerr << "smq_grid_tool: journal write failed: "
                  << outcome.storageDetail << "\n";
    } else if (outcome.interrupted) {
        std::cerr << "smq_grid_tool: interrupted; rerun with --resume\n";
    }
    return outcome.exitCode();
}
