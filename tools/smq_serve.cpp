/**
 * @file
 * Thin entry point for the benchmark-as-a-service daemon; all logic
 * (and its tests) live in src/serve/serve_cli.cpp. Installs the
 * cooperative SIGINT/SIGTERM handlers first so a signal at any point
 * drains in-flight jobs instead of dropping them.
 */

#include <iostream>
#include <string>
#include <vector>

#include "serve/serve_cli.hpp"
#include "util/stop.hpp"

int
main(int argc, char **argv)
{
    smq::util::installStopHandlers();
    std::vector<std::string> args(argv + 1, argv + argc);
    return smq::serve::serveMain(args, std::cin, std::cout, std::cerr);
}
