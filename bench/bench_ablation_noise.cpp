/**
 * @file
 * Ablation: validity and cost knobs of the noisy-execution substrate.
 * (1) trajectory unravelling vs exact density-matrix channel — the
 *     two engines must agree;
 * (2) shots-per-trajectory amortisation — score estimates must be
 *     unbiased as the batch size grows;
 * (3) artifact-style noise sweep — scores fall monotonically with the
 *     noise scale (the HPCA artifact's demonstration).
 */

#include <iostream>

#include "core/benchmarks/ghz.hpp"
#include "sim/density_matrix.hpp"
#include "sim/runner.hpp"
#include "stats/hellinger.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_ablation_noise", argc, argv);
    sim::NoiseModel noise;
    noise.enabled = true;
    noise.p1 = 0.01;
    noise.p2 = 0.04;
    noise.pMeas = 0.02;
    noise.t1 = 100.0;
    noise.t2 = 80.0;
    noise.time1q = 0.05;
    noise.time2q = 0.4;
    noise.timeMeas = 5.0;

    std::cout << "Ablation 1: trajectory sampling vs exact density "
                 "matrix\n(Hellinger fidelity between the two engines' "
                 "output distributions; 1.0 = identical)\n\n";
    {
        stats::TextTable table({"circuit", "shots", "fidelity(traj, DM)"});
        for (std::size_t n : {2, 3, 4, 5}) {
            core::GhzBenchmark bench(n);
            qc::Circuit circuit = bench.circuits()[0];
            stats::Distribution exact =
                sim::noisyDistribution(circuit, noise);
            for (std::uint64_t shots : {2000, 50000}) {
                sim::RunOptions options;
                options.shots = shots;
                options.noise = noise;
                options.shotsPerTrajectory = 1;
                stats::Rng rng(41);
                stats::Counts sampled = sim::run(circuit, options, rng);
                table.addRow({bench.name(), std::to_string(shots),
                              stats::formatFixed(
                                  stats::hellingerFidelity(sampled, exact),
                                  4)});
            }
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "Ablation 2: shots-per-trajectory amortisation\n"
                 "(GHZ-5 score under noise; the estimate must stay "
                 "unbiased while runtime drops)\n\n";
    {
        core::GhzBenchmark bench(5);
        qc::Circuit circuit = bench.circuits()[0];
        stats::TextTable table(
            {"shots/trajectory", "score (mean of 5 runs)"});
        for (std::uint64_t batch : {1, 5, 20, 100}) {
            double total = 0.0;
            for (int rep = 0; rep < 5; ++rep) {
                sim::RunOptions options;
                options.shots = 4000;
                options.noise = noise;
                options.shotsPerTrajectory = batch;
                stats::Rng rng(100 + rep);
                total += bench.score({sim::run(circuit, options, rng)});
            }
            table.addRow({std::to_string(batch),
                          stats::formatFixed(total / 5.0, 4)});
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "Ablation 3: artifact-style noise sweep (GHZ-4 score "
                 "vs noise scale)\n\n";
    {
        core::GhzBenchmark bench(4);
        qc::Circuit circuit = bench.circuits()[0];
        stats::TextTable table({"noise scale", "score"});
        for (double scale : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
            sim::RunOptions options;
            options.shots = 6000;
            options.noise = noise.scaled(scale);
            stats::Rng rng(7);
            table.addRow({stats::formatFixed(scale, 1),
                          stats::formatFixed(
                              bench.score({sim::run(circuit, options,
                                                    rng)}),
                              4)});
        }
        std::cout << table.render() << "\n";
    }
    return 0;
}
