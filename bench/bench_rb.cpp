/**
 * @file
 * Self-consistency check of the device models: single-qubit
 * randomized benchmarking (the gate-level methodology the paper's
 * Sec. II contrasts with application-level benchmarking) is run
 * against each device's noise model; the extracted error per Clifford
 * must track the Table II 1q error-rate calibration the model was
 * built from (plus the decoherence its gate times imply).
 */

#include <iostream>

#include "core/randomized_benchmarking.hpp"
#include "device/device.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_rb", argc, argv);
    std::cout << "Randomized benchmarking vs Table II calibration\n"
              << "(1q RB, sequence lengths 1..1024, 20 sequences x 400 "
                 "shots)\n\n";

    stats::TextTable table({"device", "RB decay p", "RB err/Clifford",
                            "calib err(1q)%", "calib err x 1.875"});
    for (const device::Device &dev : device::allDevices()) {
        stats::Rng rng(91);
        core::RbResult result = core::runRb(
            dev.noise, {1, 16, 64, 256, 1024}, 20, 400, rng);
        // average H/S gates per Clifford in the BFS decomposition
        double gates_per_clifford = 0.0;
        for (const core::Clifford1q &c : core::clifford1qGroup())
            gates_per_clifford += static_cast<double>(c.gates.size());
        gates_per_clifford /= 24.0;
        double predicted =
            gates_per_clifford * dev.noise.p1 / 2.0 * 100.0;
        table.addRow({dev.name, stats::formatFixed(result.decay, 4),
                      stats::formatFixed(
                          100.0 * result.errorPerClifford, 3) +
                          "%",
                      stats::formatFixed(100.0 * dev.noise.p1, 3),
                      stats::formatFixed(predicted, 3) + "%"});
    }
    std::cout << table.render() << "\n";

    std::cout << "Two-qubit RB (lengths 1..64, 10 sequences x 300 "
                 "shots):\n\n";
    stats::TextTable table2({"device", "RB decay p", "RB err/Clifford",
                             "calib err(2q)%"});
    for (const device::Device &dev :
         {device::ibmCasablanca(), device::ibmToronto(),
          device::ionqDevice(), device::aqtDevice()}) {
        stats::Rng rng(93);
        core::RbResult result =
            core::runRb2q(dev.noise, {1, 8, 24, 64}, 10, 300, rng);
        table2.addRow({dev.name, stats::formatFixed(result.decay, 4),
                       stats::formatFixed(
                           100.0 * result.errorPerClifford, 2) +
                           "%",
                       stats::formatFixed(100.0 * dev.noise.p2, 2)});
    }
    std::cout << table2.render() << "\n";

    std::cout
        << "Shape: the 1q RB error per Clifford tracks each device's\n"
           "calibrated 1q depolarising rate scaled by the average\n"
           "gate count per Clifford (~1.9) plus a small decoherence\n"
           "contribution, and the 2q RB error tracks the calibrated\n"
           "2q rate scaled by the CX count per 2q Clifford (~1.5) plus\n"
           "its 1q-gate overhead — i.e. the noise models fed by\n"
           "Table II are recovered by the gate-level methodology the\n"
           "paper builds upon, on both axes.\n";
    return 0;
}
