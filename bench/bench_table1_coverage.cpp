/**
 * @file
 * Regenerates paper Table I: feature-space coverage (6-D convex-hull
 * volume) of SupermarQ vs. QASMBench, Synthetic, CBG2021, TriQ and
 * PPL+2020, with the circuit counts used for each suite.
 */

#include <iostream>

#include "core/coverage.hpp"
#include "core/suites.hpp"
#include "geom/hull.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_table1_coverage", argc, argv);
    std::cout << "Table I: coverage comparison of benchmark suites\n"
              << "(volume of the convex hull of each suite's feature\n"
              << " vectors in the 6-D feature space; Sec. IV-G)\n\n";

    struct SuiteSpec
    {
        const char *name;
        std::vector<core::FeatureVector> points;
        const char *paper; ///< value reported in the paper
    };
    std::vector<SuiteSpec> suites;
    suites.push_back({"SupermarQ", core::supermarqFeaturePoints(),
                      "9.0e-03 (52 ckts)"});
    suites.push_back({"QASMBench", core::qasmbenchProxyFeaturePoints(),
                      "4.0e-03 (62 ckts)"});
    suites.push_back({"Synthetic", core::syntheticFeaturePoints(),
                      "1.4e-03 (6 ckts)"});
    suites.push_back({"CBG2021", core::cbgProxyFeaturePoints(400),
                      "1.6e-08 (10476 ckts)"});
    suites.push_back({"TriQ", core::triqProxyFeaturePoints(),
                      "4.1e-14 (12 ckts)"});
    suites.push_back({"PPL+2020", core::pplProxyFeaturePoints(),
                      "1.0e-15 (9 ckts)"});

    stats::TextTable table({"suite", "volume", "circuits", "affine rank",
                            "paper value"});
    for (const SuiteSpec &spec : suites) {
        core::CoverageResult cov =
            core::computeCoverage(spec.name, spec.points);
        table.addRow({spec.name, stats::formatScientific(cov.volume, 1),
                      std::to_string(cov.numCircuits),
                      std::to_string(cov.affineRank), spec.paper});
    }
    std::cout << table.render() << "\n";

    std::cout
        << "Shape check vs. the paper: the application suites\n"
           "(SupermarQ, QASMBench) exceed the synthetic suite, whose\n"
           "volume is exactly 1/6! = 1.389e-03 (the simplex spanned by\n"
           "the six unit feature vectors and the trivial program); the\n"
           "parametric CBG2021 family is orders of magnitude thinner;\n"
           "TriQ and PPL+2020 contain no mid-circuit measurement, so\n"
           "their vectors lie in the measurement = 0 hyperplane and the\n"
           "6-D volume is exactly zero (rank 5). The paper's 4.1e-14 /\n"
           "1.0e-15 for those suites are qhull joggle artifacts on the\n"
           "same degenerate geometry.\n";
    return 0;
}
