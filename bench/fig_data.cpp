#include "fig_data.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "report/checkpoint.hpp"
#include "report/history.hpp"
#include "util/stop.hpp"
#include "util/thread_pool.hpp"

namespace smq::bench {

namespace {

/** A mistyped --shard must fail loudly, not run the wrong slice. */
core::ShardSpec
parseShardOrDie(const char *text)
{
    std::optional<core::ShardSpec> spec = core::parseShardSpec(text);
    if (!spec) {
        std::cerr << "bad --shard '" << text
                  << "' (expected i/N with 0 <= i < N)\n";
        std::exit(report::kExitConfigMismatch);
    }
    return *spec;
}

/** A mistyped --backend must fail loudly, not fall back to Auto. */
sim::BackendKind
parseBackendOrDie(const char *text)
{
    std::optional<sim::BackendKind> kind = sim::backendFromString(text);
    if (!kind) {
        std::cerr << "bad --backend '" << text
                  << "' (expected auto, statevector, density-matrix, "
                     "stabilizer or trajectory)\n";
        std::exit(report::kExitConfigMismatch);
    }
    return *kind;
}

} // namespace

Scale
scaleFromArgs(int argc, char **argv)
{
    Scale scale;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) {
            scale.paperShots = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            scale.defaultShots = 150;
            scale.repetitions = 2;
        } else if (std::strcmp(argv[i], "--faults") == 0) {
            scale.faults = true;
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            scale.jobs = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            scale.jobs = static_cast<std::size_t>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            scale.traceDir = argv[++i];
        } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            scale.traceDir = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            scale.metrics = true;
        } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
            scale.metrics = false;
        } else if (std::strcmp(argv[i], "--history") == 0 &&
                   i + 1 < argc) {
            scale.historyPath = argv[++i];
        } else if (std::strncmp(argv[i], "--history=", 10) == 0) {
            scale.historyPath = argv[i] + 10;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            scale.progress = true;
        } else if (std::strcmp(argv[i], "--heartbeat") == 0 &&
                   i + 1 < argc) {
            scale.heartbeatSecs = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(argv[i], "--heartbeat=", 12) == 0) {
            scale.heartbeatSecs = std::strtod(argv[i] + 12, nullptr);
        } else if (std::strcmp(argv[i], "--shard") == 0 &&
                   i + 1 < argc) {
            scale.shard = parseShardOrDie(argv[++i]);
        } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
            scale.shard = parseShardOrDie(argv[i] + 8);
        } else if (std::strcmp(argv[i], "--checkpoint") == 0 &&
                   i + 1 < argc) {
            scale.checkpointDir = argv[++i];
        } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
            scale.checkpointDir = argv[i] + 13;
        } else if (std::strcmp(argv[i], "--resume") == 0 &&
                   i + 1 < argc) {
            scale.resumeDir = argv[++i];
        } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
            scale.resumeDir = argv[i] + 9;
        } else if (std::strcmp(argv[i], "--backend") == 0 &&
                   i + 1 < argc) {
            scale.backend = parseBackendOrDie(argv[++i]);
        } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
            scale.backend = parseBackendOrDie(argv[i] + 10);
        }
    }
    return scale;
}

ObsSession::ObsSession(std::string tool, const Scale &scale)
    : tool_(std::move(tool)), scale_(scale)
{
    // One process = one manifest: counts from static initialisation or
    // an earlier session must not leak into this run's rollups.
    obs::resetMetrics();
    obs::setMetricsEnabled(scale_.metrics);
    if (!scale_.traceDir.empty())
        obs::startTracing(scale_.traceDir);
    if (scale_.heartbeatSecs > 0.0) {
        obs::ProgressOptions progress;
        progress.mode = obs::ProgressOptions::Mode::Jsonl;
        progress.heartbeatSecs = scale_.heartbeatSecs;
        obs::startProgress(progress);
    } else if (scale_.progress) {
        obs::ProgressOptions progress;
        progress.mode = obs::ProgressOptions::Mode::Tty;
        obs::startProgress(progress);
    }
}

ObsSession::ObsSession(std::string tool, int argc, char **argv)
    : ObsSession(std::move(tool), scaleFromArgs(argc, argv))
{
}

ObsSession::~ObsSession()
{
    obs::stopProgress();
    if (!scale_.traceDir.empty())
        obs::stopTracing();
    obs::RunManifest manifest = obs::RunManifest::capture(tool_);
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.shots = scale_.paperShots ? 0 : scale_.defaultShots;
    manifest.repetitions = scale_.repetitions;
    manifest.jobs = scale_.jobs;
    manifest.faultsEnabled = scale_.faults;
    manifest.faultSeed = scale_.faultSeed;
    manifest.traceDir = scale_.traceDir;
    manifest.extra = extra_;
    if (scale_.paperShots)
        manifest.extra.emplace("shots_mode", "paper");
    manifest.extra.emplace("sim.backend", sim::toString(scale_.backend));
    if (!manifest.writeFile(manifestPath())) {
        std::cerr << "warning: could not write " << manifestPath()
                  << "\n";
    }
    if (!scale_.historyPath.empty()) {
        report::HistoryRecord record =
            report::HistoryRecord::fromManifest(manifest);
        record.values = values_;
        std::string error;
        if (!report::appendHistory(scale_.historyPath, record, &error)) {
            // Name the cause: "write: No space left on device" tells
            // the operator what to fix, a bare "could not" does not.
            std::cerr << "warning: could not append to "
                      << scale_.historyPath
                      << (error.empty() ? "" : " (" + error + ")")
                      << "\n";
        }
    }
}

void
ObsSession::note(const std::string &key, const std::string &value)
{
    extra_[key] = value;
}

void
ObsSession::value(const std::string &key, double v)
{
    values_[key] = v;
}

std::string
ObsSession::manifestPath() const
{
    return tool_ + "_manifest.json";
}

namespace {

std::uint64_t
shotsForDevice(const device::Device &dev, const Scale &scale)
{
    if (!scale.paperShots)
        return scale.defaultShots;
    // Sec. VI: 2000 shots on IBM, 1024 on AQT, 35 on IonQ
    if (dev.kind == device::ArchitectureKind::TrappedIon)
        return 35;
    if (dev.name == "AQT")
        return 1024;
    return 2000;
}

bool
isErrorCorrectionName(const std::string &name)
{
    return name.rfind("bit_code", 0) == 0 ||
           name.rfind("phase_code", 0) == 0;
}

std::string
cachePath(const Scale &scale)
{
    std::ostringstream name;
    name << "fig2_cache_"
         << (scale.paperShots ? "paper"
                              : std::to_string(scale.defaultShots))
         << "_r" << scale.repetitions;
    // A forced engine produces different histograms than the planner's
    // choices: its grid gets its own cache file.
    if (scale.backend != sim::BackendKind::Auto)
        name << "_" << sim::toString(scale.backend);
    name << ".txt";
    return name.str();
}

// v3: per-run backend plan token appended to each cell record.
constexpr const char *kCacheVersion = "smq-fig2-cache-v3";

void
saveGrid(const Fig2Grid &grid, const Scale &scale)
{
    // Write-to-temp + rename: an interrupted regenerator can never
    // leave a truncated cache that a later run would parse as garbage.
    const std::string path = cachePath(scale);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << serializeGrid(grid);
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

bool
loadGrid(Fig2Grid &grid, const Scale &scale)
{
    std::ifstream in(cachePath(scale));
    if (!in)
        return false;
    std::string version;
    std::getline(in, version);
    if (version != kCacheVersion)
        return false;
    std::size_t n_devices = 0;
    in >> n_devices;
    in.ignore();
    grid.deviceNames.resize(n_devices);
    for (std::string &name : grid.deviceNames)
        std::getline(in, name);
    std::size_t n_rows = 0;
    in >> n_rows;
    in.ignore();
    grid.rows.resize(n_rows);
    for (GridRow &row : grid.rows) {
        std::getline(in, row.benchmark);
        in >> row.isErrorCorrection;
        in >> row.features.communication >> row.features.criticalDepth >>
            row.features.entanglement >> row.features.parallelism >>
            row.features.liveness >> row.features.measurement;
        in >> row.stats.numQubits >> row.stats.depth >>
            row.stats.gateCount >> row.stats.twoQubitGates >>
            row.stats.measurements >> row.stats.resets;
        row.runs.resize(n_devices);
        for (std::size_t d = 0; d < n_devices; ++d) {
            core::BenchmarkRun &run = row.runs[d];
            run.benchmark = row.benchmark;
            run.device = grid.deviceNames[d];
            int status = 0, cause = 0;
            std::size_t n_scores = 0;
            std::string plan;
            in >> status >> cause >> run.plannedRepetitions >>
                run.attempts >> run.errorBarScale >> run.swapsInserted >>
                run.physicalTwoQubitGates >> plan >> n_scores;
            run.plan = plan == "-" ? "" : plan;
            run.status = static_cast<core::RunStatus>(status);
            run.cause = static_cast<core::FailureCause>(cause);
            run.tooLarge = run.status == core::RunStatus::TooLarge;
            run.scores.resize(n_scores);
            for (double &s : run.scores)
                in >> s;
            if (!run.scores.empty())
                run.summary = stats::summarize(run.scores);
        }
        in.ignore();
    }
    return static_cast<bool>(in);
}

/** Representative fault schedule for the --faults demonstration. */
jobs::FaultInjector
demoInjector(const Scale &scale)
{
    jobs::FaultInjector injector(scale.faultSeed);
    jobs::FaultProfile profile;
    profile.pTransient = 0.10;
    profile.pQueueTimeout = 0.05;
    profile.pShotTruncation = 0.08;
    profile.calibrationDrift = 0.05;
    injector.setDefaultProfile(profile);
    return injector;
}

/** Whether any crash-tolerance machinery is switched on. */
bool
resilienceActive(const Scale &scale)
{
    return scale.shard.active() || !scale.checkpointDir.empty() ||
           !scale.resumeDir.empty();
}

/**
 * Canonical execution-config text of the checkpoint header: every
 * knob that changes cell results. Two journals are only mergeable /
 * resumable when this text matches.
 */
std::string
configKey(const Scale &scale)
{
    std::ostringstream key;
    key << "shots="
        << (scale.paperShots ? "paper"
                             : std::to_string(scale.defaultShots))
        << ";repetitions=" << scale.repetitions
        << ";faults=" << (scale.faults ? 1 : 0)
        << ";fault_seed=" << scale.faultSeed
        << ";backend=" << sim::toString(scale.backend);
    return key.str();
}

report::CheckpointHeader
headerForGrid(const Scale &scale, const Fig2Grid &grid)
{
    report::CheckpointHeader header;
    header.tool = "smq-grid";
    header.config = configKey(scale);
    header.shardIndex = scale.shard.index;
    header.shardCount = scale.shard.count;
    header.devices = grid.deviceNames;
    for (const GridRow &row : grid.rows)
        header.benchmarks.push_back(row.benchmark);
    return header;
}

report::CheckpointRow
rowRecord(const GridRow &row)
{
    report::CheckpointRow rec;
    rec.benchmark = row.benchmark;
    rec.isErrorCorrection = row.isErrorCorrection;
    for (double v : row.features.asArray())
        rec.features.push_back(v);
    rec.stats = {row.stats.numQubits,    row.stats.depth,
                 row.stats.gateCount,    row.stats.twoQubitGates,
                 row.stats.measurements, row.stats.resets};
    return rec;
}

report::CheckpointCell
cellFromRun(const core::BenchmarkRun &run)
{
    report::CheckpointCell rec;
    rec.benchmark = run.benchmark;
    rec.device = run.device;
    // Interrupted cells carry salvage worth inspecting, but only an
    // uninterrupted outcome is final: resume re-runs the others so
    // the finished grid is byte-identical to an uninterrupted sweep.
    rec.final = run.cause != core::FailureCause::Interrupted;
    rec.status = static_cast<int>(run.status);
    rec.cause = static_cast<int>(run.cause);
    rec.plannedRepetitions = run.plannedRepetitions;
    rec.attempts = run.attempts;
    rec.errorBarScale = run.errorBarScale;
    rec.swapsInserted = run.swapsInserted;
    rec.physicalTwoQubitGates = run.physicalTwoQubitGates;
    rec.plan = run.plan;
    rec.scores = run.scores;
    return rec;
}

core::BenchmarkRun
runFromCell(const report::CheckpointCell &cell)
{
    core::BenchmarkRun run;
    run.benchmark = cell.benchmark;
    run.device = cell.device;
    run.status = static_cast<core::RunStatus>(cell.status);
    run.cause = static_cast<core::FailureCause>(cell.cause);
    run.tooLarge = run.status == core::RunStatus::TooLarge;
    run.detail = "resumed from checkpoint";
    run.plannedRepetitions =
        static_cast<std::size_t>(cell.plannedRepetitions);
    run.attempts = static_cast<std::size_t>(cell.attempts);
    run.errorBarScale = cell.errorBarScale;
    run.swapsInserted = static_cast<std::size_t>(cell.swapsInserted);
    run.physicalTwoQubitGates =
        static_cast<std::size_t>(cell.physicalTwoQubitGates);
    run.plan = cell.plan;
    run.scores = cell.scores;
    if (!run.scores.empty())
        run.summary = stats::summarize(run.scores);
    return run;
}

} // namespace

int
GridOutcome::exitCode() const
{
    if (configMismatch)
        return report::kExitConfigMismatch;
    if (storageError)
        return report::kExitStorageError;
    if (interrupted)
        return report::kExitInterrupted;
    return 0;
}

std::string
serializeGrid(const Fig2Grid &grid)
{
    std::ostringstream out;
    out.precision(17);
    out << kCacheVersion << "\n" << grid.deviceNames.size() << "\n";
    for (const std::string &name : grid.deviceNames)
        out << name << "\n";
    out << grid.rows.size() << "\n";
    for (const GridRow &row : grid.rows) {
        out << row.benchmark << "\n" << row.isErrorCorrection << "\n";
        for (double v : row.features.asArray())
            out << v << " ";
        out << "\n"
            << row.stats.numQubits << " " << row.stats.depth << " "
            << row.stats.gateCount << " " << row.stats.twoQubitGates
            << " " << row.stats.measurements << " " << row.stats.resets
            << "\n";
        for (const core::BenchmarkRun &run : row.runs) {
            // Plan tokens are space-free by construction ('-' stands
            // for "never planned"), so the record stays >>-parseable.
            out << static_cast<int>(run.status) << " "
                << static_cast<int>(run.cause) << " "
                << run.plannedRepetitions << " " << run.attempts << " "
                << run.errorBarScale << " " << run.swapsInserted << " "
                << run.physicalTwoQubitGates << " "
                << (run.plan.empty() ? "-" : run.plan) << " "
                << run.scores.size();
            for (double s : run.scores)
                out << " " << s;
            out << "\n";
        }
    }
    return out.str();
}

GridOutcome
computeGrid(const Scale &scale,
            const std::vector<core::BenchmarkPtr> &suite,
            const std::vector<device::Device> &devices)
{
    GridOutcome outcome;
    Fig2Grid &grid = outcome.grid;
    SMQ_TRACE_SPAN(obs::names::kSpanGrid,
                   obs::jsonField("jobs", static_cast<std::uint64_t>(
                                              scale.jobs)));
    // From here on SIGINT/SIGTERM request a cooperative stop: workers
    // finish or salvage their current cell, the journal and manifest
    // flush, and the driver exits kExitInterrupted. A second signal
    // falls back to the default (immediate) disposition.
    util::installStopHandlers();

    for (const device::Device &dev : devices)
        grid.deviceNames.push_back(dev.name);

    jobs::JobOptions job_options;
    job_options.harness.repetitions = scale.repetitions;
    job_options.harness.backend = scale.backend;
    job_options.stop = util::stopRequested;

    const std::size_t n_rows = suite.size();
    const std::size_t n_devices = devices.size();
    const std::size_t n_cells = n_rows * n_devices;
    grid.rows.resize(n_rows);

    // Per-row metadata (features/stats of the primary logical circuit).
    util::parallelFor(scale.jobs, n_rows, [&](std::size_t r) {
        GridRow &row = grid.rows[r];
        row.benchmark = suite[r]->name();
        row.isErrorCorrection = isErrorCorrectionName(row.benchmark);
        qc::Circuit primary = suite[r]->circuits().front();
        row.features = core::computeFeatures(primary);
        row.stats = core::computeStats(primary);
        row.runs.resize(n_devices);
    });

    // Checkpoint setup. Resume loads the existing journal (refusing a
    // foreign workload/shard); a fresh journal starts with the header
    // and every row record — rows are label-derived and identical
    // across shards, which is what lets the merge reassemble the grid
    // without re-simulating anything.
    const std::string journal_dir = !scale.resumeDir.empty()
                                        ? scale.resumeDir
                                        : scale.checkpointDir;
    report::CheckpointWriter writer;
    std::unordered_map<std::string, report::CheckpointCell> resumed;
    std::unordered_set<std::string> salvaged;
    if (!journal_dir.empty()) {
        const report::CheckpointHeader expected =
            headerForGrid(scale, grid);
        bool fresh = true;
        if (!scale.resumeDir.empty()) {
            report::CheckpointLoad load =
                report::loadCheckpoint(journal_dir);
            if (load.exists) {
                if (!load.headerOk) {
                    outcome.configMismatch = true;
                    outcome.mismatchDetail =
                        journal_dir + " has no readable journal header";
                    return outcome;
                }
                if (!load.header.sameWorkload(expected) ||
                    load.header.shardIndex != expected.shardIndex) {
                    outcome.configMismatch = true;
                    outcome.mismatchDetail =
                        journal_dir +
                        " journals a different workload or shard "
                        "(config '" +
                        load.header.config + "' vs '" + expected.config +
                        "')";
                    return outcome;
                }
                fresh = false;
                for (report::CheckpointCell &cell : load.cells) {
                    if (cell.final)
                        resumed[cell.key()] = std::move(cell);
                    else
                        salvaged.insert(cell.key());
                }
            }
        }
        writer = report::CheckpointWriter(journal_dir);
        if (fresh) {
            writer.writeHeader(expected);
            for (const GridRow &row : grid.rows)
                writer.appendRow(rowRecord(row));
        }
    }

    // Pre-pass over the cells, in deterministic grid order: foreign
    // cells (another shard's) and resumed cells are settled here;
    // everything else gets an Interrupted placeholder that stands
    // when cooperative shutdown prevents the cell from being claimed.
    std::vector<std::uint8_t> todo(n_cells, 0);
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
        const std::size_t r = cell / n_devices;
        const std::size_t d = cell % n_devices;
        core::BenchmarkRun &run = grid.rows[r].runs[d];
        run.benchmark = grid.rows[r].benchmark;
        run.device = grid.deviceNames[d];
        if (!core::shardOwnsCell(scale.shard, run.benchmark,
                                 run.device)) {
            run.status = core::RunStatus::Skipped;
            run.cause = core::FailureCause::None;
            run.detail =
                "cell owned by shard " +
                std::to_string(core::shardOfCell(
                    run.benchmark, run.device, scale.shard.count)) +
                "/" + std::to_string(scale.shard.count);
            obs::counter(obs::names::kShardCellsForeign).add();
            continue;
        }
        obs::counter(obs::names::kShardCellsOwned).add();
        auto it = resumed.find(run.benchmark + "@" + run.device);
        if (it != resumed.end()) {
            run = runFromCell(it->second);
            obs::counter(obs::names::kCheckpointCellsResumed).add();
            continue;
        }
        if (salvaged.count(run.benchmark + "@" + run.device) > 0)
            obs::counter(obs::names::kCheckpointCellsSalvaged).add();
        run.status = core::RunStatus::Skipped;
        run.cause = core::FailureCause::Interrupted;
        run.detail = "shutdown requested before the cell was claimed";
        todo[cell] = 1;
    }

    // The remaining (benchmark x device) cells fan out over the thread
    // pool. Each cell gets its own SweepContext over the same injector
    // seed: fault decisions and simulation streams are pure functions
    // of the (seed, device, benchmark, rep, attempt) labels, and the
    // suite deadline is infinite here, so cell results cannot depend
    // on execution order — the grid is byte-identical for any jobs
    // value, any shard split, and across kill/resume cycles.
    obs::progressBegin(obs::names::kSpanGrid, obs::names::kSpanJob,
                       n_cells, scale.jobs);
    util::parallelFor(
        scale.jobs, n_cells,
        [&](std::size_t cell) {
            if (todo[cell] == 0)
                return;
            const std::size_t r = cell / n_devices;
            const std::size_t d = cell % n_devices;
            jobs::JobOptions options = job_options;
            options.harness.shots = shotsForDevice(devices[d], scale);
            options.harness.seed = 1000 + r;
            jobs::SweepContext cell_ctx(options,
                                        scale.faults
                                            ? demoInjector(scale)
                                            : jobs::FaultInjector());
            grid.rows[r].runs[d] =
                jobs::runJob(*suite[r], devices[d], options, cell_ctx);
            writer.appendCell(cellFromRun(grid.rows[r].runs[d]));
        },
        util::stopRequested);
    obs::progressEnd();

    outcome.interrupted = util::stopRequested();
    if (writer.active() && !writer.error().empty()) {
        outcome.storageError = true;
        outcome.storageDetail = writer.error();
    }

    // Progress report after the fact, in deterministic grid order.
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < n_devices; ++d) {
            std::cerr << "  " << row.benchmark << " @ "
                      << grid.deviceNames[d] << " = "
                      << jobs::cellText(row.runs[d]) << "\n";
        }
    }
    return outcome;
}

GridOutcome
computeFig2GridOutcome(const Scale &scale)
{
    // Fault-injected runs are demonstrations, and a shard's or an
    // interrupted run's grid is deliberately partial: never let
    // either in or out of the cache.
    const bool cacheable = !scale.faults && scale.useCache &&
                           !resilienceActive(scale);
    GridOutcome outcome;
    if (cacheable && loadGrid(outcome.grid, scale)) {
        std::cerr << "(reusing cached grid " << cachePath(scale) << ")\n";
        return outcome;
    }
    outcome = computeGrid(scale, core::figure2Benchmarks(),
                          device::allDevices());
    if (cacheable && !outcome.interrupted && !outcome.storageError)
        saveGrid(outcome.grid, scale);
    return outcome;
}

Fig2Grid
computeFig2Grid(const Scale &scale)
{
    return computeFig2GridOutcome(scale).grid;
}

std::vector<std::vector<core::ScoredInstance>>
scoredInstancesPerDevice(const Fig2Grid &grid)
{
    std::vector<std::vector<core::ScoredInstance>> per_device(
        grid.deviceNames.size());
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < row.runs.size(); ++d) {
            // Only cells with salvageable scores enter the Fig. 3/4
            // correlation analysis; skipped and failed cells drop out
            // exactly as missing hardware data did in the paper.
            if (!core::scoreable(row.runs[d].status) ||
                row.runs[d].scores.empty())
                continue;
            core::ScoredInstance inst;
            inst.benchmark = row.benchmark;
            inst.isErrorCorrection = row.isErrorCorrection;
            inst.features = row.features;
            inst.stats = row.stats;
            inst.score = row.runs[d].summary.mean;
            per_device[d].push_back(std::move(inst));
        }
    }
    return per_device;
}

void
noteGridScores(ObsSession &session, const Fig2Grid &grid)
{
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < row.runs.size(); ++d) {
            const core::BenchmarkRun &run = row.runs[d];
            if (!core::scoreable(run.status) || run.scores.empty())
                continue;
            session.value("score." + row.benchmark + "@" +
                              grid.deviceNames[d],
                          run.summary.mean);
        }
    }
}

} // namespace smq::bench
