#include "fig_data.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "device/device.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "report/history.hpp"
#include "util/thread_pool.hpp"

namespace smq::bench {

Scale
scaleFromArgs(int argc, char **argv)
{
    Scale scale;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) {
            scale.paperShots = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            scale.defaultShots = 150;
            scale.repetitions = 2;
        } else if (std::strcmp(argv[i], "--faults") == 0) {
            scale.faults = true;
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            scale.jobs = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            scale.jobs = static_cast<std::size_t>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            scale.traceDir = argv[++i];
        } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            scale.traceDir = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            scale.metrics = true;
        } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
            scale.metrics = false;
        } else if (std::strcmp(argv[i], "--history") == 0 &&
                   i + 1 < argc) {
            scale.historyPath = argv[++i];
        } else if (std::strncmp(argv[i], "--history=", 10) == 0) {
            scale.historyPath = argv[i] + 10;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            scale.progress = true;
        } else if (std::strcmp(argv[i], "--heartbeat") == 0 &&
                   i + 1 < argc) {
            scale.heartbeatSecs = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(argv[i], "--heartbeat=", 12) == 0) {
            scale.heartbeatSecs = std::strtod(argv[i] + 12, nullptr);
        }
    }
    return scale;
}

ObsSession::ObsSession(std::string tool, const Scale &scale)
    : tool_(std::move(tool)), scale_(scale)
{
    // One process = one manifest: counts from static initialisation or
    // an earlier session must not leak into this run's rollups.
    obs::resetMetrics();
    obs::setMetricsEnabled(scale_.metrics);
    if (!scale_.traceDir.empty())
        obs::startTracing(scale_.traceDir);
    if (scale_.heartbeatSecs > 0.0) {
        obs::ProgressOptions progress;
        progress.mode = obs::ProgressOptions::Mode::Jsonl;
        progress.heartbeatSecs = scale_.heartbeatSecs;
        obs::startProgress(progress);
    } else if (scale_.progress) {
        obs::ProgressOptions progress;
        progress.mode = obs::ProgressOptions::Mode::Tty;
        obs::startProgress(progress);
    }
}

ObsSession::ObsSession(std::string tool, int argc, char **argv)
    : ObsSession(std::move(tool), scaleFromArgs(argc, argv))
{
}

ObsSession::~ObsSession()
{
    obs::stopProgress();
    if (!scale_.traceDir.empty())
        obs::stopTracing();
    obs::RunManifest manifest = obs::RunManifest::capture(tool_);
    manifest.deviceTableVersion = device::kDeviceTableVersion;
    manifest.shots = scale_.paperShots ? 0 : scale_.defaultShots;
    manifest.repetitions = scale_.repetitions;
    manifest.jobs = scale_.jobs;
    manifest.faultsEnabled = scale_.faults;
    manifest.faultSeed = scale_.faultSeed;
    manifest.traceDir = scale_.traceDir;
    manifest.extra = extra_;
    if (scale_.paperShots)
        manifest.extra.emplace("shots_mode", "paper");
    if (!manifest.writeFile(manifestPath())) {
        std::cerr << "warning: could not write " << manifestPath()
                  << "\n";
    }
    if (!scale_.historyPath.empty()) {
        report::HistoryRecord record =
            report::HistoryRecord::fromManifest(manifest);
        record.values = values_;
        if (!report::appendHistory(scale_.historyPath, record)) {
            std::cerr << "warning: could not append to "
                      << scale_.historyPath << "\n";
        }
    }
}

void
ObsSession::note(const std::string &key, const std::string &value)
{
    extra_[key] = value;
}

void
ObsSession::value(const std::string &key, double v)
{
    values_[key] = v;
}

std::string
ObsSession::manifestPath() const
{
    return tool_ + "_manifest.json";
}

namespace {

std::uint64_t
shotsForDevice(const device::Device &dev, const Scale &scale)
{
    if (!scale.paperShots)
        return scale.defaultShots;
    // Sec. VI: 2000 shots on IBM, 1024 on AQT, 35 on IonQ
    if (dev.kind == device::ArchitectureKind::TrappedIon)
        return 35;
    if (dev.name == "AQT")
        return 1024;
    return 2000;
}

bool
isErrorCorrectionName(const std::string &name)
{
    return name.rfind("bit_code", 0) == 0 ||
           name.rfind("phase_code", 0) == 0;
}

std::string
cachePath(const Scale &scale)
{
    std::ostringstream name;
    name << "fig2_cache_"
         << (scale.paperShots ? "paper"
                              : std::to_string(scale.defaultShots))
         << "_r" << scale.repetitions << ".txt";
    return name.str();
}

constexpr const char *kCacheVersion = "smq-fig2-cache-v2";

void
saveGrid(const Fig2Grid &grid, const Scale &scale)
{
    // Write-to-temp + rename: an interrupted regenerator can never
    // leave a truncated cache that a later run would parse as garbage.
    const std::string path = cachePath(scale);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << serializeGrid(grid);
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

bool
loadGrid(Fig2Grid &grid, const Scale &scale)
{
    std::ifstream in(cachePath(scale));
    if (!in)
        return false;
    std::string version;
    std::getline(in, version);
    if (version != kCacheVersion)
        return false;
    std::size_t n_devices = 0;
    in >> n_devices;
    in.ignore();
    grid.deviceNames.resize(n_devices);
    for (std::string &name : grid.deviceNames)
        std::getline(in, name);
    std::size_t n_rows = 0;
    in >> n_rows;
    in.ignore();
    grid.rows.resize(n_rows);
    for (GridRow &row : grid.rows) {
        std::getline(in, row.benchmark);
        in >> row.isErrorCorrection;
        in >> row.features.communication >> row.features.criticalDepth >>
            row.features.entanglement >> row.features.parallelism >>
            row.features.liveness >> row.features.measurement;
        in >> row.stats.numQubits >> row.stats.depth >>
            row.stats.gateCount >> row.stats.twoQubitGates >>
            row.stats.measurements >> row.stats.resets;
        row.runs.resize(n_devices);
        for (std::size_t d = 0; d < n_devices; ++d) {
            core::BenchmarkRun &run = row.runs[d];
            run.benchmark = row.benchmark;
            run.device = grid.deviceNames[d];
            int status = 0, cause = 0;
            std::size_t n_scores = 0;
            in >> status >> cause >> run.plannedRepetitions >>
                run.attempts >> run.errorBarScale >> run.swapsInserted >>
                run.physicalTwoQubitGates >> n_scores;
            run.status = static_cast<core::RunStatus>(status);
            run.cause = static_cast<core::FailureCause>(cause);
            run.tooLarge = run.status == core::RunStatus::TooLarge;
            run.scores.resize(n_scores);
            for (double &s : run.scores)
                in >> s;
            if (!run.scores.empty())
                run.summary = stats::summarize(run.scores);
        }
        in.ignore();
    }
    return static_cast<bool>(in);
}

/** Representative fault schedule for the --faults demonstration. */
jobs::FaultInjector
demoInjector(const Scale &scale)
{
    jobs::FaultInjector injector(scale.faultSeed);
    jobs::FaultProfile profile;
    profile.pTransient = 0.10;
    profile.pQueueTimeout = 0.05;
    profile.pShotTruncation = 0.08;
    profile.calibrationDrift = 0.05;
    injector.setDefaultProfile(profile);
    return injector;
}

} // namespace

std::string
serializeGrid(const Fig2Grid &grid)
{
    std::ostringstream out;
    out.precision(17);
    out << kCacheVersion << "\n" << grid.deviceNames.size() << "\n";
    for (const std::string &name : grid.deviceNames)
        out << name << "\n";
    out << grid.rows.size() << "\n";
    for (const GridRow &row : grid.rows) {
        out << row.benchmark << "\n" << row.isErrorCorrection << "\n";
        for (double v : row.features.asArray())
            out << v << " ";
        out << "\n"
            << row.stats.numQubits << " " << row.stats.depth << " "
            << row.stats.gateCount << " " << row.stats.twoQubitGates
            << " " << row.stats.measurements << " " << row.stats.resets
            << "\n";
        for (const core::BenchmarkRun &run : row.runs) {
            out << static_cast<int>(run.status) << " "
                << static_cast<int>(run.cause) << " "
                << run.plannedRepetitions << " " << run.attempts << " "
                << run.errorBarScale << " " << run.swapsInserted << " "
                << run.physicalTwoQubitGates << " " << run.scores.size();
            for (double s : run.scores)
                out << " " << s;
            out << "\n";
        }
    }
    return out.str();
}

Fig2Grid
computeFig2Grid(const Scale &scale)
{
    Fig2Grid grid;
    // Fault-injected runs are demonstrations; never cache them.
    if (!scale.faults && scale.useCache && loadGrid(grid, scale)) {
        std::cerr << "(reusing cached grid " << cachePath(scale) << ")\n";
        return grid;
    }
    grid = Fig2Grid{};
    SMQ_TRACE_SPAN(obs::names::kSpanGrid,
                   obs::jsonField("jobs", static_cast<std::uint64_t>(
                                              scale.jobs)));
    std::vector<device::Device> devices = device::allDevices();
    for (const device::Device &dev : devices)
        grid.deviceNames.push_back(dev.name);

    jobs::JobOptions job_options;
    job_options.harness.repetitions = scale.repetitions;

    std::vector<core::BenchmarkPtr> suite = core::figure2Benchmarks();
    const std::size_t n_rows = suite.size();
    const std::size_t n_devices = devices.size();
    grid.rows.resize(n_rows);

    // Per-row metadata (features/stats of the primary logical circuit).
    util::parallelFor(scale.jobs, n_rows, [&](std::size_t r) {
        GridRow &row = grid.rows[r];
        row.benchmark = suite[r]->name();
        row.isErrorCorrection = isErrorCorrectionName(row.benchmark);
        qc::Circuit primary = suite[r]->circuits().front();
        row.features = core::computeFeatures(primary);
        row.stats = core::computeStats(primary);
        row.runs.resize(n_devices);
    });

    // The (benchmark x device) cells fan out over the thread pool.
    // Each cell gets its own SweepContext over the same injector seed:
    // fault decisions and simulation streams are pure functions of the
    // (seed, device, benchmark, rep, attempt) labels, and the suite
    // deadline is infinite here, so cell results cannot depend on
    // execution order — the grid is byte-identical for any jobs value.
    obs::progressBegin(obs::names::kSpanGrid, obs::names::kSpanJob,
                       n_rows * n_devices, scale.jobs);
    util::parallelFor(
        scale.jobs, n_rows * n_devices, [&](std::size_t cell) {
            const std::size_t r = cell / n_devices;
            const std::size_t d = cell % n_devices;
            jobs::JobOptions options = job_options;
            options.harness.shots = shotsForDevice(devices[d], scale);
            options.harness.seed = 1000 + r;
            jobs::SweepContext cell_ctx(options,
                                        scale.faults
                                            ? demoInjector(scale)
                                            : jobs::FaultInjector());
            grid.rows[r].runs[d] =
                jobs::runJob(*suite[r], devices[d], options, cell_ctx);
        });
    obs::progressEnd();

    // Progress report after the fact, in deterministic grid order.
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < n_devices; ++d) {
            std::cerr << "  " << row.benchmark << " @ "
                      << grid.deviceNames[d] << " = "
                      << jobs::cellText(row.runs[d]) << "\n";
        }
    }
    if (!scale.faults && scale.useCache)
        saveGrid(grid, scale);
    return grid;
}

std::vector<std::vector<core::ScoredInstance>>
scoredInstancesPerDevice(const Fig2Grid &grid)
{
    std::vector<std::vector<core::ScoredInstance>> per_device(
        grid.deviceNames.size());
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < row.runs.size(); ++d) {
            // Only cells with salvageable scores enter the Fig. 3/4
            // correlation analysis; skipped and failed cells drop out
            // exactly as missing hardware data did in the paper.
            if (!core::scoreable(row.runs[d].status) ||
                row.runs[d].scores.empty())
                continue;
            core::ScoredInstance inst;
            inst.benchmark = row.benchmark;
            inst.isErrorCorrection = row.isErrorCorrection;
            inst.features = row.features;
            inst.stats = row.stats;
            inst.score = row.runs[d].summary.mean;
            per_device[d].push_back(std::move(inst));
        }
    }
    return per_device;
}

void
noteGridScores(ObsSession &session, const Fig2Grid &grid)
{
    for (const GridRow &row : grid.rows) {
        for (std::size_t d = 0; d < row.runs.size(); ++d) {
            const core::BenchmarkRun &run = row.runs[d];
            if (!core::scoreable(run.status) || run.scores.empty())
                continue;
            session.value("score." + row.benchmark + "@" +
                              grid.deviceNames[d],
                          run.summary.mean);
        }
    }
}

} // namespace smq::bench
