/**
 * @file
 * Regenerates paper Fig. 2: every SupermarQ benchmark instance
 * executed on the nine device models, reporting the mean score with a
 * one-standard-deviation error bar per (benchmark, device) pair, and
 * X where the benchmark does not fit the device.
 *
 * Flags: --paper  use the paper's shot counts (IBM 2000 / AQT 1024 /
 *                 IonQ 35); default uses 500 shots everywhere.
 *        --quick  reduced shots/repetitions for smoke runs.
 *        --faults seeded fault injection through the job layer, so the
 *                 matrix shows the mixed Ok/Partial/Skipped/Failed
 *                 statuses of a real collection campaign.
 *        --shard i/N      execute only shard i of a split sweep
 *        --checkpoint DIR journal every completed cell into DIR
 *        --resume DIR     continue a killed/interrupted sweep
 *
 * Exit codes: 0 complete; 75 interrupted (rerun with --resume);
 * 74 journal write failure; 2 usage / foreign resume journal.
 */

#include <iostream>

#include "core/benchmarks/mermin_bell.hpp"
#include "fig_data.hpp"
#include "stats/table.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::scaleFromArgs(argc, argv);
    bench::ObsSession obs_session("bench_fig2_scores", scale);
    std::cout << "Figure 2: benchmark scores across devices ("
              << (scale.paperShots ? "paper shot counts"
                                   : std::to_string(scale.defaultShots) +
                                         " shots/device")
              << ", " << scale.repetitions << " repetitions; X = does "
              << "not fit, skip(cause) = capability-gated"
              << (scale.faults ? ", fault injection seed " +
                                     std::to_string(scale.faultSeed)
                               : "")
              << ")\n\n";

    bench::GridOutcome outcome = bench::computeFig2GridOutcome(scale);
    if (outcome.configMismatch) {
        std::cerr << "bench_fig2_scores: " << outcome.mismatchDetail
                  << "\n";
        return outcome.exitCode();
    }
    bench::Fig2Grid &grid = outcome.grid;
    bench::noteGridScores(obs_session, grid);

    std::vector<std::string> headers = {"benchmark"};
    for (const std::string &name : grid.deviceNames)
        headers.push_back(name);
    stats::TextTable table(headers);

    for (const bench::GridRow &row : grid.rows) {
        std::vector<std::string> cells = {row.benchmark};
        for (const core::BenchmarkRun &run : row.runs)
            cells.push_back(jobs::cellText(run));
        table.addRow(std::move(cells));
    }
    std::cout << table.render() << "\n";

    // The Mermin-Bell panels carry the classical-limit line (Eq. 9):
    // report where each device lands relative to it.
    std::cout << "Mermin-Bell classical limits (score equivalent of the "
                 "local-hidden-variable bound, Fig. 2b red line):\n";
    for (std::size_t n : {3, 4, 5}) {
        double quantum = core::MerminBellBenchmark::quantumValue(n);
        double classical = core::MerminBellBenchmark::classicalBound(n);
        std::cout << "  n = " << n << ": score must exceed "
                  << stats::formatFixed(
                         (classical + quantum) / (2.0 * quantum), 3)
                  << " to demonstrate quantumness\n";
    }
    std::cout
        << "\nShape checks vs. the paper (Sec. VI): scores fall as\n"
           "width/depth grow; the error-correction proxies score lowest\n"
           "on the superconducting devices (RESET/measurement cost);\n"
           "IonQ's all-to-all connectivity wins the communication-heavy\n"
           "benchmarks (Mermin-Bell, Vanilla QAOA) despite its higher\n"
           "2q error rate, while matched-connectivity benchmarks (ZZ-\n"
           "SWAP QAOA, VQE, Hamiltonian simulation) keep the\n"
           "superconducting devices competitive.\n";
    if (outcome.storageError) {
        std::cerr << "bench_fig2_scores: checkpoint journal write "
                     "failed: "
                  << outcome.storageDetail << "\n";
    } else if (outcome.interrupted) {
        std::cerr << "bench_fig2_scores: interrupted; rerun with "
                     "--resume to continue\n";
    }
    return outcome.exitCode();
}
