/**
 * @file
 * Ablation: readout-error mitigation (explicitly excluded from the
 * paper's Closed Division, Sec. V). Quantifies how much of each
 * benchmark's score loss on each device is pure measurement error by
 * re-scoring the same histograms after tensored readout unfolding.
 */

#include <iostream>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/mitigation.hpp"
#include "device/device.hpp"
#include "sim/runner.hpp"
#include "stats/hellinger.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

namespace {

/** Score a GHZ histogram (optionally mitigated). */
double
ghzScore(std::size_t n, const stats::Distribution &dist)
{
    stats::Distribution ideal;
    ideal.add(std::string(n, '0'), 0.5);
    ideal.add(std::string(n, '1'), 0.5);
    return stats::hellingerFidelity(dist, ideal);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_ablation_mitigation", argc, argv);
    std::cout << "Ablation: readout mitigation (Open-Division style "
                 "post-processing)\nGHZ-5 on each device: raw Closed-"
                 "Division score vs the same counts after tensored "
                 "readout unfolding.\n\n";

    const std::size_t n = 5;
    core::GhzBenchmark bench(n);
    qc::Circuit circuit = bench.circuits()[0];

    stats::TextTable table({"device", "raw score", "mitigated score",
                            "readout share of loss"});
    for (const device::Device &dev : device::allDevices()) {
        if (dev.numQubits() < n)
            continue;
        sim::RunOptions options;
        options.shots = 20000;
        options.noise = dev.noise;
        stats::Rng rng(3);
        stats::Counts raw = sim::run(circuit, options, rng);
        double raw_score = bench.score({raw});

        stats::Rng cal_rng(5);
        core::ReadoutCalibration cal =
            core::calibrateReadout(dev.noise, n, 20000, cal_rng);
        double mitigated_score =
            ghzScore(n, core::mitigateReadout(raw, cal));

        double loss = 1.0 - raw_score;
        double recovered = mitigated_score - raw_score;
        table.addRow(
            {dev.name, stats::formatFixed(raw_score, 3),
             stats::formatFixed(mitigated_score, 3),
             loss > 1e-6
                 ? stats::formatFixed(100.0 * recovered / loss, 0) + "%"
                 : "-"});
    }
    std::cout << table.render() << "\n";
    std::cout
        << "Shape: mitigation recovers the measurement-error share of\n"
           "the loss (largest on the high-readout-error IBM devices,\n"
           "small on IonQ whose readout is already 0.39%); the\n"
           "remaining gap is gate error and decoherence, which readout\n"
           "unfolding cannot touch. This quantifies why the paper's\n"
           "Closed Division bans post-processing: it meaningfully\n"
           "shifts scores without improving the hardware.\n";
    return 0;
}
