/**
 * @file
 * Regenerates paper Fig. 4: the example linear regression of benchmark
 * score against the entanglement-ratio feature for one QPU, fitted
 * with and without the error-correction benchmarks.
 */

#include <iostream>

#include "fig_data.hpp"
#include "stats/table.hpp"

using namespace smq;

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::scaleFromArgs(argc, argv);
    bench::ObsSession obs_session("bench_fig4_regression", scale);
    const std::size_t device_index = 4; // IBM-Montreal
    constexpr std::size_t kEntanglementAxis = 2;

    std::cout << "Figure 4: score vs entanglement-ratio regression "
                 "example\n\n";

    bench::Fig2Grid grid = bench::computeFig2Grid(scale);
    auto per_device = bench::scoredInstancesPerDevice(grid);
    const auto &instances = per_device[device_index];

    std::cout << "device: " << grid.deviceNames[device_index] << "\n\n";
    stats::TextTable points({"benchmark", "entanglement-ratio", "score",
                             "EC?"});
    for (const core::ScoredInstance &inst : instances) {
        points.addRow({inst.benchmark,
                       stats::formatFixed(inst.features.entanglement, 3),
                       stats::formatFixed(inst.score, 3),
                       inst.isErrorCorrection ? "yes" : "no"});
    }
    std::cout << points.render() << "\n";

    stats::LinearFit with_ec =
        core::axisFit(instances, kEntanglementAxis, false);
    stats::LinearFit without_ec =
        core::axisFit(instances, kEntanglementAxis, true);

    stats::TextTable fits({"fit", "intercept", "slope", "R^2", "points"});
    fits.addRow({"all benchmarks",
                 stats::formatFixed(with_ec.intercept, 3),
                 stats::formatFixed(with_ec.slope, 3),
                 stats::formatFixed(with_ec.r2, 3),
                 std::to_string(with_ec.n)});
    fits.addRow({"without EC benchmarks",
                 stats::formatFixed(without_ec.intercept, 3),
                 stats::formatFixed(without_ec.slope, 3),
                 stats::formatFixed(without_ec.r2, 3),
                 std::to_string(without_ec.n)});
    std::cout << fits.render() << "\n";

    std::cout
        << "Shape check vs. the paper: the EC benchmarks sit far below\n"
           "the trend their entanglement-ratio alone would predict\n"
           "(their RESETs are the real cost), so excluding them gives a\n"
           "steeper, much better-correlated fit.\n";
    return 0;
}
