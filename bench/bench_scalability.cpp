/**
 * @file
 * Scalability demonstration (paper principle 1, Sec. III-A): the
 * Clifford members of the suite — GHZ and the bit-code proxy — are
 * executed END-TO-END (noisy execution + scoring) at tens to hundreds
 * of qubits via the stabilizer-tableau engine, far beyond any dense
 * simulator. Scores use the same scalable reference values as at
 * small sizes: no step of the pipeline grows exponentially.
 *
 * Noise: stochastic Pauli channels at "future device" error rates
 * (amplitude damping replaced by its Pauli twirl; see
 * sim/stabilizer.hpp).
 */

#include <chrono>
#include <iostream>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "sim/stabilizer.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

namespace {

std::string
scoreAt(const core::Benchmark &bench, double p2, std::uint64_t shots,
        double *seconds_out)
{
    qc::Circuit circuit = bench.circuits()[0];
    sim::RunOptions options;
    options.shots = shots;
    if (p2 > 0.0) {
        options.noise.enabled = true;
        options.noise.p1 = p2 / 10.0;
        options.noise.p2 = p2;
        options.noise.pMeas = p2 / 2.0;
        options.noise.pReset = p2 / 2.0;
    }
    stats::Rng rng(37);
    auto start = std::chrono::steady_clock::now();
    stats::Counts counts = sim::runStabilizer(circuit, options, rng);
    auto stop = std::chrono::steady_clock::now();
    if (seconds_out) {
        *seconds_out +=
            std::chrono::duration<double>(stop - start).count();
    }
    return stats::formatFixed(bench.score({counts}), 3);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_scalability", argc, argv);
    std::cout << "Scalability: Clifford benchmarks at 50-500 qubits via "
                 "the stabilizer engine\n(256 shots; 2q error rates "
                 "spanning today's hardware to early fault tolerance)\n\n";

    stats::TextTable table({"benchmark", "qubits", "p2=0", "p2=1e-4",
                            "p2=1e-3", "p2=1e-2"});
    double seconds = 0.0;
    for (std::size_t n : {50, 100, 200, 500}) {
        core::GhzBenchmark bench(n);
        table.addRow({bench.name(), std::to_string(n),
                      scoreAt(bench, 0.0, 256, &seconds),
                      scoreAt(bench, 1e-4, 256, &seconds),
                      scoreAt(bench, 1e-3, 256, &seconds),
                      scoreAt(bench, 1e-2, 256, &seconds)});
    }
    for (std::size_t d : {25, 51, 101}) {
        core::BitCodeBenchmark bench =
            core::BitCodeBenchmark::alternating(d, 3);
        table.addRow({bench.name(),
                      std::to_string(bench.numQubits()),
                      scoreAt(bench, 0.0, 256, &seconds),
                      scoreAt(bench, 1e-4, 256, &seconds),
                      scoreAt(bench, 1e-3, 256, &seconds),
                      scoreAt(bench, 1e-2, 256, &seconds)});
    }
    std::cout << table.render() << "\n";
    std::cout << "total simulation time: " << stats::formatFixed(seconds, 1)
              << " s for "
                 "28 noisy runs of up to 500 qubits — the scalability "
                 "the paper's principles demand.\n"
              << "Shape: noiseless columns score 1.0 at every size; "
                 "scores fall smoothly with the error rate, and larger "
                 "instances fall faster (more gates, more idle slots).\n";
    return 0;
}
