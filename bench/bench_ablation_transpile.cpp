/**
 * @file
 * Ablation: how much the Closed-Division compiler passes matter
 * (paper Sec. VII discusses compiler-induced variability). Compares
 * layout strategies and the optimisation passes by SWAP count, 2q
 * gate count, depth, and the resulting noisy score for the
 * connectivity-stressing Vanilla QAOA vs. the hardware-matched
 * ZZ-SWAP QAOA.
 */

#include <iostream>

#include "core/benchmarks/qaoa.hpp"
#include "core/harness.hpp"
#include "qc/schedule.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

namespace {

void
report(const core::Benchmark &bench, const device::Device &dev,
       stats::TextTable &table)
{
    struct Config
    {
        const char *label;
        transpile::TranspileOptions options;
    };
    std::vector<Config> configs;
    {
        transpile::TranspileOptions o;
        o.layout = transpile::LayoutStrategy::Trivial;
        o.optimize = false;
        configs.push_back({"trivial, no-opt", o});
    }
    {
        transpile::TranspileOptions o;
        o.layout = transpile::LayoutStrategy::Trivial;
        configs.push_back({"trivial, opt", o});
    }
    {
        transpile::TranspileOptions o;
        o.layout = transpile::LayoutStrategy::Connectivity;
        configs.push_back({"connectivity, opt", o});
    }
    {
        transpile::TranspileOptions o;
        o.layout = transpile::LayoutStrategy::Connectivity;
        o.division = transpile::Division::Open;
        configs.push_back({"open division", o});
    }

    for (const Config &config : configs) {
        core::HarnessOptions options;
        options.shots = 1000;
        options.repetitions = 3;
        options.transpile = config.options;
        core::BenchmarkRun run =
            core::runBenchmark(bench, dev, options);
        if (run.tooLarge) {
            table.addRow({bench.name(), dev.name, config.label, "X", "X",
                          "X"});
            continue;
        }
        table.addRow({bench.name(), dev.name, config.label,
                      std::to_string(run.swapsInserted),
                      std::to_string(run.physicalTwoQubitGates),
                      stats::formatFixed(run.summary.mean, 3) + "+-" +
                          stats::formatFixed(run.summary.stddev, 3)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_ablation_transpile", argc, argv);
    std::cout << "Ablation: transpiler passes vs routing cost and score\n"
              << "(Vanilla QAOA needs all-to-all connectivity; ZZ-SWAP\n"
              << " QAOA is nearest-neighbour by construction)\n\n";

    stats::TextTable table({"benchmark", "device", "pipeline", "swaps",
                            "2q gates", "score"});

    core::QaoaVanillaBenchmark vanilla(6, 6);
    core::QaoaSwapBenchmark swap_net(6, 6);

    for (const device::Device &dev :
         {device::ibmCasablanca(), device::ibmGuadalupe(),
          device::ionqDevice()}) {
        report(vanilla, dev, table);
        report(swap_net, dev, table);
    }
    std::cout << table.render() << "\n";
    std::cout
        << "Shape checks: on sparse superconducting topologies the\n"
           "Vanilla ansatz pays a large SWAP overhead that the\n"
           "connectivity-aware layout and cancellation passes only\n"
           "partly recover, while the ZZ-SWAP ansatz routes for free;\n"
           "on the all-to-all trapped-ion model neither variant needs\n"
           "SWAPs, isolating ansatz depth as the remaining cost.\n";
    return 0;
}
