/**
 * @file
 * Regenerates paper Table II: the characteristics of the QC systems
 * used to evaluate the suite (coherence times, gate times, error
 * rates, topology).
 */

#include <iostream>

#include "device/device.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

namespace {

std::string
topologyLabel(const device::Device &dev)
{
    if (dev.allToAll())
        return "all-to-all";
    std::size_t n = dev.numQubits();
    std::size_t edges = dev.topology.numEdges();
    if (edges == n - 1) {
        bool is_line = true;
        for (std::size_t q = 0; q + 1 < n && is_line; ++q)
            is_line = dev.topology.coupled(q, q + 1);
        if (is_line)
            return "line";
    }
    return "heavy-hex (" + std::to_string(edges) + " edges)";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_table2_devices", argc, argv);
    std::cout << "Table II: characteristics of the evaluated QC systems\n"
              << "(times in microseconds, errors in percent; rows for\n"
              << " Casablanca/Guadalupe/Montreal/IonQ/AQT are Table II\n"
              << " verbatim, the remaining IBM machines use same-\n"
              << " generation representative values; see EXPERIMENTS.md)\n\n";

    stats::TextTable table({"machine", "qubits", "T1", "T2", "t(1q)",
                            "t(2q)", "t(meas)", "err(1q)%", "err(2q)%",
                            "err(meas)%", "topology"});
    for (const device::Device &dev : device::allDevices()) {
        const sim::NoiseModel &n = dev.noise;
        table.addRow({dev.name, std::to_string(dev.numQubits()),
                      stats::formatFixed(n.t1, 2),
                      stats::formatFixed(n.t2, 2),
                      stats::formatFixed(n.time1q, 3),
                      stats::formatFixed(n.time2q, 3),
                      stats::formatFixed(n.timeMeas, 2),
                      stats::formatFixed(100.0 * n.p1, 3),
                      stats::formatFixed(100.0 * n.p2, 2),
                      stats::formatFixed(100.0 * n.pMeas, 2),
                      topologyLabel(dev)});
    }
    std::cout << table.render();
    return 0;
}
