/**
 * @file
 * Regenerates paper Fig. 3: per-(feature, QPU) R^2 heatmaps of the
 * linear regression of benchmark score against feature value —
 * (a) over all benchmarks, (b) excluding the error-correction
 * benchmarks. Shares the Fig. 2 execution grid.
 */

#include <iostream>

#include "fig_data.hpp"
#include "stats/table.hpp"

using namespace smq;

namespace {

void
printHeatmap(const bench::Fig2Grid &grid,
             const std::vector<std::vector<core::ScoredInstance>> &data,
             bool exclude_ec)
{
    std::vector<std::string> headers = {"feature"};
    for (const std::string &name : grid.deviceNames)
        headers.push_back(name);
    stats::TextTable table(headers);

    for (std::size_t axis = 0; axis < core::kCorrelationAxes.size();
         ++axis) {
        std::vector<std::string> cells = {core::kCorrelationAxes[axis]};
        for (std::size_t d = 0; d < data.size(); ++d) {
            double r2 =
                core::axisFit(data[d], axis, exclude_ec).r2;
            cells.push_back(stats::formatFixed(r2, 2));
        }
        table.addRow(std::move(cells));
    }
    std::cout << table.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::scaleFromArgs(argc, argv);
    bench::ObsSession obs_session("bench_fig3_correlations", scale);
    std::cout << "Figure 3: R^2 correlation between application features "
                 "and system performance\n\n";

    bench::Fig2Grid grid = bench::computeFig2Grid(scale);
    auto per_device = bench::scoredInstancesPerDevice(grid);

    std::cout << "(a) all benchmark data:\n";
    printHeatmap(grid, per_device, /*exclude_ec=*/false);

    std::cout << "(b) excluding the error-correction benchmarks:\n";
    printHeatmap(grid, per_device, /*exclude_ec=*/true);

    std::cout
        << "Shape checks vs. the paper: with all data included, the\n"
           "measurement feature dominates the superconducting devices'\n"
           "variance (the RESET-heavy EC benchmarks crater their\n"
           "scores) while the trapped-ion device shows little\n"
           "measurement correlation (long T1 tolerates the readout\n"
           "wait); once the EC benchmarks are excluded, the\n"
           "entanglement-ratio and 2q-gate-count correlations rise.\n";
    return 0;
}
