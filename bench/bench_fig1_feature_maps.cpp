/**
 * @file
 * Regenerates paper Fig. 1: the six-feature "feature map" of every
 * SupermarQ application at several sizes, plus the program statistics
 * of each sample circuit.
 */

#include <iostream>

#include "core/benchmarks/error_correction.hpp"
#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/hamiltonian_simulation.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/benchmarks/vqe.hpp"
#include "core/features.hpp"
#include "stats/table.hpp"

#include "fig_data.hpp"

using namespace smq;

namespace {

void
addRow(stats::TextTable &table, const core::Benchmark &bench)
{
    qc::Circuit circuit = bench.circuits().front();
    core::FeatureVector f = core::computeFeatures(circuit);
    core::ProgramStats s = core::computeStats(circuit);
    table.addRow({bench.name(), stats::formatFixed(f.communication, 3),
                  stats::formatFixed(f.criticalDepth, 3),
                  stats::formatFixed(f.entanglement, 3),
                  stats::formatFixed(f.parallelism, 3),
                  stats::formatFixed(f.liveness, 3),
                  stats::formatFixed(f.measurement, 3),
                  std::to_string(s.numQubits), std::to_string(s.depth),
                  std::to_string(s.twoQubitGates)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsSession obs_session("bench_fig1_feature_maps", argc, argv);
    std::cout << "Figure 1: SupermarQ application feature maps\n"
              << "(PC = program communication, CD = critical-depth,\n"
              << " Ent = entanglement-ratio, Par = parallelism,\n"
              << " Liv = liveness, Mea = measurement; Sec. III-B)\n\n";

    stats::TextTable table({"benchmark", "PC", "CD", "Ent", "Par", "Liv",
                            "Mea", "qubits", "depth", "2q"});

    for (std::size_t n : {3, 5, 8, 16})
        addRow(table, core::GhzBenchmark(n));
    for (std::size_t n : {3, 4, 5})
        addRow(table, core::MerminBellBenchmark(n));
    for (auto [d, r] : std::vector<std::pair<std::size_t, std::size_t>>{
             {3, 1}, {4, 2}, {6, 3}}) {
        addRow(table, core::PhaseCodeBenchmark::alternating(d, r));
    }
    for (auto [d, r] : std::vector<std::pair<std::size_t, std::size_t>>{
             {3, 1}, {4, 2}, {6, 3}}) {
        addRow(table, core::BitCodeBenchmark::alternating(d, r));
    }
    for (std::size_t n : {4, 6, 8}) {
        addRow(table,
               core::QaoaSwapBenchmark(n, n, /*optimize=*/false));
    }
    for (std::size_t n : {4, 6, 8}) {
        addRow(table,
               core::QaoaVanillaBenchmark(n, n, /*optimize=*/false));
    }
    for (std::size_t n : {4, 6, 8})
        addRow(table, core::VqeBenchmark(n, 1, /*optimize=*/false));
    for (auto [n, s] : std::vector<std::pair<std::size_t, std::size_t>>{
             {4, 3}, {6, 4}, {8, 5}}) {
        addRow(table, core::HamiltonianSimulationBenchmark(n, s));
    }

    std::cout << table.render() << "\n";
    std::cout << "Each row is one shape in the paper's radar plots; the\n"
                 "paper's qualitative signatures reproduce: GHZ maximises\n"
                 "critical-depth, Mermin-Bell maximises communication,\n"
                 "only the error-correction proxies populate the\n"
                 "measurement axis, and the ZZ-SWAP ansatz trades\n"
                 "communication for parallelism relative to Vanilla QAOA.\n";
    return 0;
}
