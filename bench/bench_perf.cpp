/**
 * @file
 * Performance harness for the hot paths.
 *
 * Default mode times the pipeline stages (transpilation cold/cached,
 * dense-simulator kernels, noisy trajectory execution) and the Fig. 2
 * grid serial vs parallel, verifies the two grids are byte-identical,
 * and writes the machine-readable BENCH_perf.json so the perf
 * trajectory is tracked across PRs.
 *
 * `bench_perf --micro` instead runs the google-benchmark
 * micro-benchmarks of the substrates (simulator gate throughput,
 * transpilation, feature extraction, Clifford synthesis, hulls).
 *
 * Flags (default mode): --jobs N (parallel grid width; default = all
 * hardware threads), --full (default-scale grid instead of the
 * reduced perf scale), --json PATH (output path).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/coverage.hpp"
#include "core/features.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/suites.hpp"
#include "device/device.hpp"
#include "fig_data.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "qc/clifford.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"
#include "transpile/cache.hpp"
#include "transpile/transpiler.hpp"
#include "util/thread_pool.hpp"

using namespace smq;

namespace {

// ---------------------------------------------------------------------
// google-benchmark micro suite (bench_perf --micro)
// ---------------------------------------------------------------------

void
BM_StateVectorHadamardLayer(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::StateVector sv(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q < n; ++q)
            sv.applyGate(qc::Gate(qc::GateType::H,
                                  {static_cast<qc::Qubit>(q)}));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StateVectorHadamardLayer)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_StateVectorCxLadder(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::StateVector sv(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q + 1 < n; ++q)
            sv.applyGate(qc::Gate(qc::GateType::CX,
                                  {static_cast<qc::Qubit>(q),
                                   static_cast<qc::Qubit>(q + 1)}));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorCxLadder)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_StateVectorToffoliLayer(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::StateVector sv(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q + 2 < n; ++q)
            sv.applyGate(qc::Gate(qc::GateType::CCX,
                                  {static_cast<qc::Qubit>(q),
                                   static_cast<qc::Qubit>(q + 1),
                                   static_cast<qc::Qubit>(q + 2)}));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorToffoliLayer)->Arg(12)->Arg(16)->Arg(20);

void
BM_DensityMatrix1QSweep(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::DensityMatrix rho(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q < n; ++q)
            rho.applyGate(qc::Gate(qc::GateType::H,
                                   {static_cast<qc::Qubit>(q)}));
        benchmark::DoNotOptimize(&rho);
    }
}
BENCHMARK(BM_DensityMatrix1QSweep)->Arg(6)->Arg(8)->Arg(10);

void
BM_DensityMatrixCxLadder(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::DensityMatrix rho(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q + 1 < n; ++q)
            rho.applyGate(qc::Gate(qc::GateType::CX,
                                   {static_cast<qc::Qubit>(q),
                                    static_cast<qc::Qubit>(q + 1)}));
        benchmark::DoNotOptimize(&rho);
    }
}
BENCHMARK(BM_DensityMatrixCxLadder)->Arg(6)->Arg(8)->Arg(10);

void
BM_NoisyTrajectoryGhz(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    core::GhzBenchmark bench(n);
    qc::Circuit circuit = bench.circuits()[0];
    sim::RunOptions options;
    options.shots = 100;
    options.noise = device::ibmMontreal().noise;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        stats::Rng rng(seed++);
        benchmark::DoNotOptimize(sim::run(circuit, options, rng));
    }
}
BENCHMARK(BM_NoisyTrajectoryGhz)->Arg(5)->Arg(10)->Arg(14);

void
BM_TranspileQaoaOntoFalcon27(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    core::QaoaVanillaBenchmark bench(n, 3, /*optimize=*/false);
    qc::Circuit circuit = bench.circuits()[0];
    device::Device dev = device::ibmMontreal();
    for (auto _ : state) {
        benchmark::DoNotOptimize(transpile::transpile(circuit, dev));
    }
}
BENCHMARK(BM_TranspileQaoaOntoFalcon27)->Arg(6)->Arg(10)->Arg(16);

void
BM_FeatureExtraction(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    qc::Circuit circuit = core::GhzBenchmark(n).circuits()[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(core::computeFeatures(circuit));
}
BENCHMARK(BM_FeatureExtraction)->Arg(100)->Arg(1000);

void
BM_MerminCliffordSynthesis(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    auto terms = core::MerminBellBenchmark::merminTerms(n);
    std::vector<qc::PauliString> paulis;
    for (const auto &[coeff, p] : terms)
        paulis.push_back(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(qc::diagonalizationCircuit(paulis, n));
}
BENCHMARK(BM_MerminCliffordSynthesis)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_CoverageHull(benchmark::State &state)
{
    auto points = core::supermarqFeaturePoints();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::computeCoverage("s", points));
}
BENCHMARK(BM_CoverageHull);

void
BM_QasmRoundTrip(benchmark::State &state)
{
    qc::Circuit circuit = qc::library::qft(16);
    for (auto _ : state) {
        std::string text = qc::toQasm(circuit);
        benchmark::DoNotOptimize(qc::fromQasm(text));
    }
}
BENCHMARK(BM_QasmRoundTrip);

// Observability substrate: the cost of one record at an instrumented
// site, with the layer on and (the common case) off. The `perf.micro.*`
// names are scratch registrations, not part of the documented registry.

void
BM_ObsCounterAddEnabled(benchmark::State &state)
{
    obs::setMetricsEnabled(true);
    obs::Counter &counter = obs::counter("perf.micro.counter");
    for (auto _ : state)
        counter.add();
    obs::setMetricsEnabled(false);
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterAddEnabled)->ThreadRange(1, 8);

void
BM_ObsCounterAddDisabled(benchmark::State &state)
{
    obs::setMetricsEnabled(false);
    obs::Counter &counter = obs::counter("perf.micro.counter");
    for (auto _ : state)
        counter.add();
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterAddDisabled);

void
BM_ObsHistogramRecord(benchmark::State &state)
{
    obs::setMetricsEnabled(true);
    obs::Histogram &hist = obs::histogram("perf.micro.histogram");
    std::uint64_t v = 0;
    for (auto _ : state)
        hist.record(++v);
    obs::setMetricsEnabled(false);
    benchmark::DoNotOptimize(hist.snapshot().count);
}
BENCHMARK(BM_ObsHistogramRecord)->ThreadRange(1, 8);

void
BM_ObsSpanScopeEnabled(benchmark::State &state)
{
    obs::setMetricsEnabled(true); // span-end records stage.*.ns
    for (auto _ : state) {
        SMQ_TRACE_SPAN("perf.micro.span");
        benchmark::ClobberMemory();
    }
    obs::setMetricsEnabled(false);
}
BENCHMARK(BM_ObsSpanScopeEnabled);

void
BM_ObsSpanScopeDisabled(benchmark::State &state)
{
    obs::setMetricsEnabled(false);
    for (auto _ : state) {
        SMQ_TRACE_SPAN("perf.micro.span");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_ObsSpanScopeDisabled);

// ---------------------------------------------------------------------
// default mode: staged wall-clock timings + BENCH_perf.json
// ---------------------------------------------------------------------

struct Stage
{
    std::string name;
    double wallMs = 0.0;
};

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

template <typename Fn>
double
timeIt(Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    return millisSince(start);
}

/** metrics-on vs metrics-off timing of a fixed simulation workload. */
struct ObsOverhead
{
    double offMs = 0.0;
    double onMs = 0.0;
    double frac = 0.0; ///< (on - off) / off, clamped at 0
    bool within2pct = true;
    /** Same workload under active tracing with a trace context
     *  installed — the distributed-tracing propagation path. */
    double propagationMs = 0.0;
    double propagationFrac = 0.0; ///< vs metrics-on, clamped at 0
    bool propagationWithin2pct = true;
};

void
writeJson(const std::string &path, const std::vector<Stage> &stages,
          std::size_t jobs, double serialMs, double parallelMs,
          bool identical, const ObsOverhead &obs_overhead,
          std::uint64_t shots, std::uint64_t repetitions, bool full)
{
    const sim::kernels::KernelConfig kc = sim::kernels::kernelConfig();
    std::ofstream out(path, std::ios::trunc);
    out.precision(6);
    out << std::fixed;
    // Hardware concurrency straight from the runtime, not the (possibly
    // flag-overridden) job count the grid actually used.
    out << "{\n  \"threads_available\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"grid_jobs\": " << jobs
        << ",\n  \"kernel\": {\"jobs\": " << kc.jobs
        << ", \"threshold\": " << kc.threshold << ", \"simd\": \""
        << (sim::kernels::usingAvx2() ? "avx2" : "scalar")
        << "\"},\n  \"config\": {\"shots\": " << shots
        << ", \"repetitions\": " << repetitions << ", \"full\": "
        << (full ? "true" : "false") << "},\n  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        out << "    {\"name\": \"" << stages[i].name
            << "\", \"wall_ms\": " << stages[i].wallMs << "}"
            << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"obs_overhead\": {\n"
        << "    \"metrics_off_ms\": " << obs_overhead.offMs << ",\n"
        << "    \"metrics_on_ms\": " << obs_overhead.onMs << ",\n"
        << "    \"overhead_frac\": " << obs_overhead.frac << ",\n"
        << "    \"within_2pct\": "
        << (obs_overhead.within2pct ? "true" : "false") << ",\n"
        << "    \"propagation_ms\": " << obs_overhead.propagationMs
        << ",\n"
        << "    \"propagation_frac\": " << obs_overhead.propagationFrac
        << ",\n"
        << "    \"propagation_within_2pct\": "
        << (obs_overhead.propagationWithin2pct ? "true" : "false")
        << "\n  },\n"
        << "  \"fig2_grid\": {\n"
        << "    \"serial_ms\": " << serialMs << ",\n"
        << "    \"parallel_ms\": " << parallelMs << ",\n"
        << "    \"speedup\": "
        << (parallelMs > 0.0 ? serialMs / parallelMs : 0.0) << ",\n"
        << "    \"parallel_identical_to_serial\": "
        << (identical ? "true" : "false") << "\n  }\n}\n";
}

int
perfHarness(int argc, char **argv)
{
    std::size_t jobs = util::defaultJobs();
    bool full = false;
    std::string json_path = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs = static_cast<std::size_t>(std::atoi(argv[i] + 7));
        else if (std::strcmp(argv[i], "--full") == 0)
            full = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    if (jobs == 0)
        jobs = util::defaultJobs();

    // Intra-op kernels get the full hardware budget; inside the
    // parallel grid the nested-pool guard degrades them to serial, so
    // the two layers never oversubscribe each other.
    sim::kernels::setKernelJobs(util::defaultJobs());

    bench::ObsSession obs_session("bench_perf", argc, argv);

    std::vector<Stage> stages;
    auto record = [&](const std::string &name, double ms) {
        stages.push_back({name, ms});
        std::cout << "  " << name << ": " << ms << " ms\n";
    };

    std::cout << "bench_perf: staged wall-clock timings ("
              << util::defaultJobs() << " hardware threads, grid jobs="
              << jobs << ")\n";

    // Transpilation across the full grid's inputs, cold then memoized.
    std::vector<device::Device> devices = device::allDevices();
    std::vector<core::BenchmarkPtr> suite = core::figure2Benchmarks();
    transpile::clearTranspileCache();
    auto transpile_all = [&] {
        for (const core::BenchmarkPtr &bench : suite) {
            for (const device::Device &dev : devices) {
                if (bench->numQubits() > dev.numQubits())
                    continue;
                for (const qc::Circuit &c : bench->circuits())
                    transpile::cachedTranspile(c, dev);
            }
        }
    };
    record("transpile_grid_cold", timeIt(transpile_all));
    record("transpile_grid_memoized", timeIt(transpile_all));

    // Dense-kernel stages.
    record("statevector_ghz20_ideal", timeIt([&] {
               core::GhzBenchmark ghz(20);
               benchmark::DoNotOptimize(
                   sim::idealDistribution(ghz.circuits()[0]));
           }));
    record("density_matrix_ghz9_exact_noise", timeIt([&] {
               core::GhzBenchmark ghz(9);
               benchmark::DoNotOptimize(sim::noisyDistribution(
                   ghz.circuits()[0], device::ibmMontreal().noise));
           }));
    record("trajectories_ghz14_2000shots", timeIt([&] {
               core::GhzBenchmark ghz(14);
               sim::RunOptions ro;
               ro.shots = 2000;
               ro.noise = device::ibmMontreal().noise;
               stats::Rng rng(7);
               benchmark::DoNotOptimize(
                   sim::run(ghz.circuits()[0], ro, rng));
           }));

    // Observability overhead: the same trajectory workload with the
    // metric registry off, then on. The instrumented sites in the
    // simulator and pool are the real ones, so this measures what a
    // production run pays for leaving --metrics enabled.
    ObsOverhead obs_overhead;
    {
        core::GhzBenchmark ghz(12);
        qc::Circuit circuit = ghz.circuits()[0];
        sim::RunOptions ro;
        ro.shots = 400;
        ro.noise = device::ibmMontreal().noise;
        auto workload = [&] {
            stats::Rng rng(11);
            benchmark::DoNotOptimize(sim::run(circuit, ro, rng));
        };
        workload(); // warm caches before timing
        auto best_of = [&](bool enabled) {
            obs::setMetricsEnabled(enabled);
            double best = timeIt(workload);
            for (int r = 1; r < 3; ++r)
                best = std::min(best, timeIt(workload));
            return best;
        };
        obs_overhead.offMs = best_of(false);
        obs_overhead.onMs = best_of(true);
        obs::setMetricsEnabled(true); // back on for the manifest
        obs_overhead.frac =
            obs_overhead.offMs > 0.0
                ? std::max(0.0, (obs_overhead.onMs -
                                 obs_overhead.offMs) /
                                    obs_overhead.offMs)
                : 0.0;
        obs_overhead.within2pct = obs_overhead.frac <= 0.02;
        std::cout << "  obs_overhead: off=" << obs_overhead.offMs
                  << " ms, on=" << obs_overhead.onMs << " ms, frac="
                  << obs_overhead.frac
                  << (obs_overhead.within2pct
                          ? ""
                          : "  WARN: exceeds 2% budget")
                  << "\n";

        // Propagation path: same workload with spans recorded and a
        // trace context installed (what every traced daemon job pays).
        // Judged against the metrics-on baseline so the delta is the
        // tracing+context cost alone, held to the same 2% budget by
        // `smq_sentinel check`.
        const std::string trace_tmp = json_path + ".trace_tmp";
        std::filesystem::create_directories(trace_tmp);
        obs::startTracing(trace_tmp);
        {
            obs::TraceContextScope context(obs::TraceContext::derive(
                11, "ghz_12", "bench_perf"));
            obs_overhead.propagationMs = timeIt(workload);
            for (int r = 1; r < 3; ++r)
                obs_overhead.propagationMs = std::min(
                    obs_overhead.propagationMs, timeIt(workload));
        }
        obs::stopTracing();
        std::error_code cleanup;
        std::filesystem::remove_all(trace_tmp, cleanup);
        obs_overhead.propagationFrac =
            obs_overhead.onMs > 0.0
                ? std::max(0.0, (obs_overhead.propagationMs -
                                 obs_overhead.onMs) /
                                    obs_overhead.onMs)
                : 0.0;
        obs_overhead.propagationWithin2pct =
            obs_overhead.propagationFrac <= 0.02;
        std::cout << "  obs_propagation: traced="
                  << obs_overhead.propagationMs
                  << " ms, frac=" << obs_overhead.propagationFrac
                  << (obs_overhead.propagationWithin2pct
                          ? ""
                          : "  WARN: exceeds 2% budget")
                  << "\n";
    }

    // The Fig. 2 grid, serial then parallel, compared byte-for-byte.
    bench::Scale scale;
    scale.useCache = false;
    if (!full) {
        scale.defaultShots = 100;
        scale.repetitions = 2;
    }
    transpile::clearTranspileCache();
    scale.jobs = 1;
    bench::Fig2Grid serial_grid;
    double serial_ms =
        timeIt([&] { serial_grid = bench::computeFig2Grid(scale); });
    record("fig2_grid_serial", serial_ms);

    transpile::clearTranspileCache();
    scale.jobs = jobs;
    bench::Fig2Grid parallel_grid;
    double parallel_ms =
        timeIt([&] { parallel_grid = bench::computeFig2Grid(scale); });
    record("fig2_grid_parallel", parallel_ms);

    bool identical = bench::serializeGrid(serial_grid) ==
                     bench::serializeGrid(parallel_grid);
    std::cout << "  speedup: "
              << (parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0)
              << "x over " << jobs << " jobs; grids "
              << (identical ? "byte-identical" : "DIFFER (BUG)") << "\n";

    writeJson(json_path, stages, jobs, serial_ms, parallel_ms,
              identical, obs_overhead, scale.defaultShots,
              scale.repetitions, full);
    std::cout << "wrote " << json_path << "\n";
    obs_session.note("grid_identical", identical ? "true" : "false");
    obs_session.note("obs_overhead_within_2pct",
                     obs_overhead.within2pct ? "true" : "false");
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--micro") == 0) {
            // hand the remaining flags to google-benchmark
            std::vector<char *> args;
            for (int j = 0; j < argc; ++j) {
                if (j != i)
                    args.push_back(argv[j]);
            }
            int bench_argc = static_cast<int>(args.size());
            benchmark::Initialize(&bench_argc, args.data());
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        }
    }
    return perfHarness(argc, argv);
}
