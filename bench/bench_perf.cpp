/**
 * @file
 * google-benchmark microbenchmarks of the substrates: simulator gate
 * throughput, trajectory execution, transpilation, feature extraction,
 * Clifford synthesis, and coverage-hull computation.
 */

#include <benchmark/benchmark.h>

#include "core/benchmarks/ghz.hpp"
#include "core/benchmarks/mermin_bell.hpp"
#include "core/coverage.hpp"
#include "core/features.hpp"
#include "core/benchmarks/qaoa.hpp"
#include "core/suites.hpp"
#include "device/device.hpp"
#include "qc/clifford.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "sim/runner.hpp"
#include "sim/statevector.hpp"
#include "transpile/transpiler.hpp"

using namespace smq;

namespace {

void
BM_StateVectorHadamardLayer(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::StateVector sv(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q < n; ++q)
            sv.applyGate(qc::Gate(qc::GateType::H,
                                  {static_cast<qc::Qubit>(q)}));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StateVectorHadamardLayer)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_StateVectorCxLadder(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::StateVector sv(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q + 1 < n; ++q)
            sv.applyGate(qc::Gate(qc::GateType::CX,
                                  {static_cast<qc::Qubit>(q),
                                   static_cast<qc::Qubit>(q + 1)}));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorCxLadder)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_NoisyTrajectoryGhz(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    core::GhzBenchmark bench(n);
    qc::Circuit circuit = bench.circuits()[0];
    sim::RunOptions options;
    options.shots = 100;
    options.noise = device::ibmMontreal().noise;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        stats::Rng rng(seed++);
        benchmark::DoNotOptimize(sim::run(circuit, options, rng));
    }
}
BENCHMARK(BM_NoisyTrajectoryGhz)->Arg(5)->Arg(10)->Arg(14);

void
BM_TranspileQaoaOntoFalcon27(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    core::QaoaVanillaBenchmark bench(n, 3, /*optimize=*/false);
    qc::Circuit circuit = bench.circuits()[0];
    device::Device dev = device::ibmMontreal();
    for (auto _ : state) {
        benchmark::DoNotOptimize(transpile::transpile(circuit, dev));
    }
}
BENCHMARK(BM_TranspileQaoaOntoFalcon27)->Arg(6)->Arg(10)->Arg(16);

void
BM_FeatureExtraction(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    qc::Circuit circuit = core::GhzBenchmark(n).circuits()[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(core::computeFeatures(circuit));
}
BENCHMARK(BM_FeatureExtraction)->Arg(100)->Arg(1000);

void
BM_MerminCliffordSynthesis(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    auto terms = core::MerminBellBenchmark::merminTerms(n);
    std::vector<qc::PauliString> paulis;
    for (const auto &[coeff, p] : terms)
        paulis.push_back(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(qc::diagonalizationCircuit(paulis, n));
}
BENCHMARK(BM_MerminCliffordSynthesis)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_CoverageHull(benchmark::State &state)
{
    auto points = core::supermarqFeaturePoints();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::computeCoverage("s", points));
}
BENCHMARK(BM_CoverageHull);

void
BM_QasmRoundTrip(benchmark::State &state)
{
    qc::Circuit circuit = qc::library::qft(16);
    for (auto _ : state) {
        std::string text = qc::toQasm(circuit);
        benchmark::DoNotOptimize(qc::fromQasm(text));
    }
}
BENCHMARK(BM_QasmRoundTrip);

} // namespace

BENCHMARK_MAIN();
