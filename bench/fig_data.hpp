/**
 * @file
 * Shared machinery for the experiment regenerators: the Fig. 2 grid
 * (every benchmark instance executed on every device model) that
 * Figs. 2, 3 and 4 are all derived from.
 */

#ifndef SMQ_BENCH_FIG_DATA_HPP
#define SMQ_BENCH_FIG_DATA_HPP

#include <map>
#include <string>
#include <vector>

#include "core/correlation.hpp"
#include "core/harness.hpp"
#include "core/suites.hpp"
#include "jobs/report.hpp"
#include "sim/backend.hpp"

namespace smq::bench {

/** Execution scale for the regenerators. */
struct Scale
{
    /** Paper shot counts: IBM 2000, AQT 1024, IonQ 35 (Sec. VI). */
    bool paperShots = false;
    std::uint64_t defaultShots = 500; ///< used when !paperShots
    std::size_t repetitions = 3;
    /**
     * Demonstrate the fault-tolerant job layer: inject a
     * representative fault schedule (seeded, reproducible) so the
     * score matrix shows mixed Ok/Partial/Failed cells. Disables the
     * on-disk cache.
     */
    bool faults = false;
    std::uint64_t faultSeed = 2022;
    /**
     * Worker threads for the (benchmark x device) grid cells
     * (--jobs N; 0 = one per hardware thread). Every cell derives its
     * randomness from its labels, so any jobs value produces a grid
     * byte-identical to the serial one.
     */
    std::size_t jobs = 1;
    /** Read/write the on-disk grid cache (tests disable it). */
    bool useCache = true;
    /**
     * Trace output directory (--trace DIR). When non-empty the
     * regenerator records scoped spans and writes DIR/trace.json
     * (Chrome about://tracing format) plus DIR/events.jsonl on exit.
     * Empty = tracing off (the default; record sites cost one relaxed
     * atomic load).
     */
    std::string traceDir;
    /**
     * Metric counters/histograms (--metrics / --no-metrics). The
     * regenerators leave this on so their run manifests carry counter
     * rollups; instrumentation never perturbs simulation results at
     * any jobs value.
     */
    bool metrics = true;
    /**
     * Run-history store to append this run's flattened record to on
     * exit (--history FILE). Empty = no append (the default).
     */
    std::string historyPath;
    /**
     * Live progress (--progress / --heartbeat SECS). `progress`
     * enables the single-line TTY reporter; heartbeatSecs > 0 enables
     * the JSONL heartbeat stream instead (CI logs). Both off by
     * default; neither perturbs results at any jobs value.
     */
    bool progress = false;
    double heartbeatSecs = 0.0;
    /**
     * Grid partition (--shard i/N): this process executes only the
     * cells core::shardOwnsCell assigns to shard i; the others are
     * recorded as Skipped with a detail naming the owner. Assignment
     * is a pure function of the cell's labels, so the union over all
     * N shard journals is exactly one pass over the grid, regardless
     * of who ran when. Default 0/1: own everything.
     */
    core::ShardSpec shard;
    /**
     * Checkpoint journal directory (--checkpoint DIR): start a fresh
     * `smq-checkpoint-v1` journal in DIR and append every completed
     * cell durably. Empty = no journal.
     */
    std::string checkpointDir;
    /**
     * Resume directory (--resume DIR): load DIR's journal, reuse its
     * final cells verbatim (byte-identical to re-running them), re-run
     * interrupted ones, and keep appending to the same journal. A
     * journal from a different config/shard is refused. When DIR has
     * no journal yet this degrades to --checkpoint DIR.
     */
    std::string resumeDir;
    /**
     * Simulation engine (--backend NAME): Auto (the default) lets the
     * per-circuit planner pick the cheapest faithful backend; naming
     * statevector / density-matrix / stabilizer / trajectory forces
     * every cell through that engine. A forced backend keys its own
     * cache file and checkpoint config, so grids from different
     * engines never mix.
     */
    sim::BackendKind backend = sim::BackendKind::Auto;
};

/**
 * Parse --paper / --quick / --faults / --jobs N / --trace DIR /
 * --metrics / --no-metrics / --history FILE / --progress /
 * --heartbeat SECS / --shard i/N / --checkpoint DIR / --resume DIR /
 * --backend NAME command-line flags. A malformed --shard or --backend
 * exits with code 2 (usage) instead of silently running the wrong
 * configuration.
 */
Scale scaleFromArgs(int argc, char **argv);

/**
 * Per-binary observability session: one of these at the top of a
 * regenerator's main() turns the Scale's observability knobs into
 * registry + tracer state, and on destruction flushes the trace files
 * and writes `<tool>_manifest.json` (schema smq-run-manifest-v1) next
 * to the tool's output.
 *
 * The constructor resets the metric registry, so one process = one
 * manifest's worth of counts.
 */
class ObsSession
{
public:
    /** Session for a regenerator driven by a parsed Scale. */
    ObsSession(std::string tool, const Scale &scale);
    /** Convenience: parse the Scale from the command line. */
    ObsSession(std::string tool, int argc, char **argv);
    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;
    /** Flushes traces and writes the manifest; never throws. */
    ~ObsSession();

    /** Attach a tool-specific fact to the manifest's `extra` map. */
    void note(const std::string &key, const std::string &value);

    /**
     * Attach a numeric fact to this run's history record (no effect on
     * the manifest): `score.<bench>@<device>`, `wall_ms`, ...
     */
    void value(const std::string &key, double v);

    /** Path the manifest will be written to: `<tool>_manifest.json`. */
    std::string manifestPath() const;

private:
    std::string tool_;
    Scale scale_;
    std::map<std::string, std::string> extra_;
    std::map<std::string, double> values_;
};

/** One benchmark instance evaluated across all devices. */
struct GridRow
{
    std::string benchmark;
    bool isErrorCorrection = false;
    core::FeatureVector features; ///< of the primary logical circuit
    core::ProgramStats stats;
    std::vector<core::BenchmarkRun> runs; ///< one per device
};

/** The full evaluation grid. */
struct Fig2Grid
{
    std::vector<std::string> deviceNames;
    std::vector<GridRow> rows;
};

/**
 * How a grid computation ended, beyond the grid itself: the resilience
 * outcomes a driver must turn into its process exit code.
 */
struct GridOutcome
{
    Fig2Grid grid;
    /**
     * Cooperative shutdown (SIGINT/SIGTERM, or SMQ_STOP_AFTER_CELLS)
     * cut the sweep short: unclaimed cells are Skipped/Interrupted,
     * in-flight repetitions were salvaged through the partial-result
     * path, and the journal holds everything completed so far.
     */
    bool interrupted = false;
    /** A journal write failed (ENOSPC, ...); detail holds the errno. */
    bool storageError = false;
    std::string storageDetail;
    /** --resume pointed at a journal of a different workload/shard. */
    bool configMismatch = false;
    std::string mismatchDetail;

    /**
     * Driver exit code: kExitConfigMismatch (2), kExitStorageError
     * (74), kExitInterrupted (75) — in that precedence — or 0.
     */
    int exitCode() const;
};

/**
 * Execute @p suite on @p devices with the full resilience machinery:
 * shard partitioning, checkpoint journaling, resume, cooperative
 * shutdown and the memory-budget guard. Installs the stop handlers;
 * never touches the fig2 cache (that is computeFig2Grid's layer).
 */
GridOutcome computeGrid(const Scale &scale,
                        const std::vector<core::BenchmarkPtr> &suite,
                        const std::vector<device::Device> &devices);

/**
 * Execute the paper's benchmark suite on the nine device models.
 *
 * The grid is cached on disk (fig2_cache_*.txt in the working
 * directory) keyed by the scale, so the Fig. 3 / Fig. 4 regenerators
 * reuse a Fig. 2 run instead of re-simulating everything. The cache
 * is bypassed whenever sharding/checkpointing is active (a shard's
 * grid is deliberately partial) and never written for an interrupted
 * or storage-degraded run.
 */
GridOutcome computeFig2GridOutcome(const Scale &scale);

/** computeFig2GridOutcome for callers without resilience flags. */
Fig2Grid computeFig2Grid(const Scale &scale);

/**
 * Canonical text serialization of a grid (the on-disk cache format).
 * The parallel-determinism tests compare serial and threaded grids
 * through this exact byte stream.
 */
std::string serializeGrid(const Fig2Grid &grid);

/** Fold a grid into per-device scored instances for Figs. 3 and 4. */
std::vector<std::vector<core::ScoredInstance>>
scoredInstancesPerDevice(const Fig2Grid &grid);

/**
 * Record every scoreable cell's mean score on @p session as a
 * `score.<benchmark>@<device>` history value, so the run-history
 * store (and the HTML report's Fig. 2 matrix) carries the scores.
 */
void noteGridScores(ObsSession &session, const Fig2Grid &grid);

} // namespace smq::bench

#endif // SMQ_BENCH_FIG_DATA_HPP
